//! Deterministic hash-derived randomness.
//!
//! Radio realizations (fading, slot choices, interference) must be a pure
//! function of (seed, round, slot, node, …) so that executions replay
//! exactly and no hidden RNG state couples independent draws. A
//! splitmix64 finalizer over the packed inputs provides that.

/// The splitmix64 finalizer: a high-quality 64-bit mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a tuple of values into one word.
pub fn hash_tuple(parts: &[u64]) -> u64 {
    let mut acc = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &p in parts {
        acc = splitmix64(acc ^ p);
    }
    acc
}

/// Extends a [`hash_tuple`] accumulator by one more part.
///
/// Because `hash_tuple` folds its parts strictly left-to-right,
/// `extend(hash_tuple(&parts[..k]), parts[k])` equals
/// `hash_tuple(&parts[..=k])` bit-for-bit. Hot loops use this to hoist
/// the shared prefix of a tuple (e.g. `(seed, salt, round, tx)`) out of
/// an inner loop that varies only the last part.
#[inline]
pub fn extend(acc: u64, part: u64) -> u64 {
    splitmix64(acc ^ part)
}

/// The `[0, 1)` uniform encoded by a finished hash word (53-bit
/// mantissa) — the same construction [`uniform`] applies to
/// `hash_tuple`'s output.
#[inline]
fn unit_from(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// An exponential(1) draw from a prefix accumulator plus final part:
/// bit-identical to `exponential(&[..prefix parts.., last])`.
#[inline]
pub fn exponential_extend(prefix: u64, last: u64) -> f64 {
    let u = unit_from(extend(prefix, last));
    let u = if u <= 0.0 { f64::MIN_POSITIVE } else { u };
    -u.ln()
}

/// A uniform draw in `[0, 1)` from hashed inputs (53-bit mantissa).
pub fn uniform(parts: &[u64]) -> f64 {
    (hash_tuple(parts) >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform draw that is never exactly zero (safe for `ln`).
pub fn uniform_open(parts: &[u64]) -> f64 {
    let u = uniform(parts);
    if u <= 0.0 {
        f64::MIN_POSITIVE
    } else {
        u
    }
}

/// An exponential(1) draw — Rayleigh *power* fading.
pub fn exponential(parts: &[u64]) -> f64 {
    -uniform_open(parts).ln()
}

/// A standard normal draw via Box–Muller (used for log-normal shadowing).
pub fn standard_normal(parts: &[u64]) -> f64 {
    let mut with_salt = parts.to_vec();
    with_salt.push(0xA5A5);
    let u1 = uniform_open(&with_salt);
    with_salt.pop();
    with_salt.push(0x5A5A);
    let u2 = uniform(&with_salt);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_tuple(&[1, 2, 3]), hash_tuple(&[1, 2, 3]));
        assert_ne!(hash_tuple(&[1, 2, 3]), hash_tuple(&[1, 2, 4]));
        assert_eq!(uniform(&[9, 9]), uniform(&[9, 9]));
    }

    #[test]
    fn prefix_extension_is_bit_identical() {
        // The whole point of the prefix helpers: hoisting the shared
        // tuple prefix must not change a single bit of any draw.
        for round in 0..50u64 {
            for rx in 0..16u64 {
                let parts = [42, 0xFAD3, round, 7, rx];
                let prefix = hash_tuple(&parts[..4]);
                assert_eq!(extend(prefix, rx), hash_tuple(&parts));
                assert_eq!(
                    exponential_extend(prefix, rx).to_bits(),
                    exponential(&parts).to_bits(),
                    "round {round} rx {rx}"
                );
            }
        }
    }

    #[test]
    fn uniform_in_range() {
        for i in 0..1000u64 {
            let u = uniform(&[42, i]);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_positive_with_unit_mean() {
        let mean: f64 = (0..20_000u64).map(|i| exponential(&[7, i])).sum::<f64>() / 20_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let n = 20_000u64;
        let draws: Vec<f64> = (0..n).map(|i| standard_normal(&[3, i])).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }
}
