//! # wan-phy: a slotted SINR radio beneath the formal model
//!
//! The formal model of `wan-sim` *postulates* that any receiver may lose any
//! subset of a round's broadcasts, and that practical receiver-side
//! collision detectors satisfy zero completeness essentially always and
//! majority completeness most of the time (Newport '05, Sections 1.1–1.3,
//! citing the empirical studies \[30, 38, 70, 73\] and the capture effect
//! \[71\]). This crate *derives* those behaviours from physics:
//!
//! * [`channel`] — nodes placed in a disc (single-hop), log-distance path
//!   loss with log-normal shadowing and per-round Rayleigh fading, rounds
//!   divided into slots (rounds are long relative to packets, Section 1.2),
//!   SINR-threshold decoding with the capture effect, half-duplex
//!   receivers, and optional external interference bursts;
//! * [`detector`] — a carrier-sensing collision detector (report `±` iff
//!   some foreign slot was energy-busy but yielded no decode) and the
//!   adapter pair that plugs the radio into `wan-sim` as a
//!   `LossAdversary` + `CollisionDetector`;
//! * [`stats`] — per-round measurement of which completeness/accuracy
//!   properties actually held, plus message-loss fractions under offered
//!   load (experiments E11/E12);
//! * [`sync`] — a drifting-clock / periodic-resynchronization model backing
//!   the synchronized-rounds assumption (Section 1.3).
//!
//! Everything is deterministic given the configuration seed: randomness is
//! drawn from a splitmix-based hash of (seed, round, slot, node, …), never
//! from global state, so a phy-backed simulation replays exactly.

pub mod channel;
pub mod config;
pub mod detector;
pub mod hash;
pub mod stats;
pub mod sync;

pub use channel::{PhyRound, RadioChannel};
pub use config::PhyConfig;
pub use detector::{phy_components, PhyDetector, PhyLoss};
pub use stats::{measure_properties, PropertyStats};
pub use sync::{simulate_sync, SyncConfig, SyncStats};
