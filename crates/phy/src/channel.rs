//! The slotted SINR channel.

use crate::config::PhyConfig;
use crate::hash;
use wan_sim::{ProcessId, Round};

/// Everything the radio resolved for one round: per-(sender, receiver)
/// deliveries and per-receiver carrier-sense collision flags.
#[derive(Debug, Clone)]
pub struct PhyRound {
    /// The broadcasters, in ascending order.
    pub senders: Vec<ProcessId>,
    /// `delivered[si][r]`: did receiver `r` decode sender `senders[si]`'s
    /// packet (self-reception excluded here; the engine adds it).
    pub delivered: Vec<Vec<bool>>,
    /// Per-receiver collision flag from the carrier-sensing detector rule:
    /// some foreign slot was energy-busy but yielded no decode.
    pub collision: Vec<bool>,
}

impl PhyRound {
    /// How many of the round's broadcasts receiver `r` decoded (not
    /// counting its own).
    pub fn decoded_by(&self, r: ProcessId) -> usize {
        self.delivered.iter().filter(|row| row[r.index()]).count()
    }
}

/// The radio: static geometry and link gains, plus pure-function fading and
/// interference realizations per round.
#[derive(Debug, Clone)]
pub struct RadioChannel {
    cfg: PhyConfig,
    /// Node positions (metres).
    positions: Vec<(f64, f64)>,
    /// Static linear link gains (path loss × shadowing), `gain[i][j]`,
    /// symmetric.
    gain: Vec<Vec<f64>>,
}

impl RadioChannel {
    /// Builds the radio: places nodes uniformly in the disc and fixes the
    /// static gains.
    pub fn new(cfg: PhyConfig) -> Self {
        assert!(cfg.n >= 1, "need at least one node");
        assert!(cfg.slots_per_round >= 1, "need at least one slot");
        let positions: Vec<(f64, f64)> = (0..cfg.n)
            .map(|i| {
                let r = cfg.radius_m * hash::uniform(&[cfg.seed, 0xB0, i as u64]).sqrt();
                let theta = 2.0 * std::f64::consts::PI * hash::uniform(&[cfg.seed, 0xA1, i as u64]);
                (r * theta.cos(), r * theta.sin())
            })
            .collect();
        let mut gain = vec![vec![0.0; cfg.n]; cfg.n];
        for i in 0..cfg.n {
            for j in 0..cfg.n {
                if i == j {
                    continue;
                }
                let (a, b) = (i.min(j) as u64, i.max(j) as u64);
                let (xi, yi) = positions[i];
                let (xj, yj) = positions[j];
                let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().max(1.0);
                let path = d.powf(-cfg.pathloss_exp);
                let shadow_db =
                    cfg.shadowing_sigma_db * hash::standard_normal(&[cfg.seed, 0x5D, a, b]);
                gain[i][j] = path * PhyConfig::db_to_linear(shadow_db);
            }
        }
        RadioChannel {
            cfg,
            positions,
            gain,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PhyConfig {
        &self.cfg
    }

    /// Node positions (for visualization / tests).
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    /// Slot chosen by `sender` in `round`.
    fn slot_of(&self, round: Round, sender: ProcessId) -> usize {
        (hash::hash_tuple(&[self.cfg.seed, 0x510D, round.0, sender.index() as u64])
            % self.cfg.slots_per_round as u64) as usize
    }

    /// Rayleigh power fading for (round, tx, rx).
    fn fading(&self, round: Round, tx: ProcessId, rx: ProcessId) -> f64 {
        hash::exponential(&[
            self.cfg.seed,
            0xFAD3,
            round.0,
            tx.index() as u64,
            rx.index() as u64,
        ])
    }

    /// External interference burst power (linear mW) in (round, slot).
    fn interference_mw(&self, round: Round, slot: usize) -> f64 {
        if self.cfg.interference_prob <= 0.0 {
            return 0.0;
        }
        if self.cfg.interference_until.is_some_and(|u| round >= u) {
            return 0.0;
        }
        let u = hash::uniform(&[self.cfg.seed, 0x1F7, round.0, slot as u64]);
        if u < self.cfg.interference_prob {
            PhyConfig::dbm_to_mw(self.cfg.interference_power_dbm)
        } else {
            0.0
        }
    }

    /// Resolves one round: slot choices, fading, SINR decoding with
    /// capture, carrier sensing.
    pub fn resolve(&self, round: Round, senders: &[ProcessId]) -> PhyRound {
        let n = self.cfg.n;
        let slots = self.cfg.slots_per_round;
        let p_tx = PhyConfig::dbm_to_mw(self.cfg.tx_power_dbm);
        let noise = PhyConfig::dbm_to_mw(self.cfg.noise_floor_dbm);
        let beta = PhyConfig::db_to_linear(self.cfg.sinr_threshold_db);
        let sense = PhyConfig::dbm_to_mw(self.cfg.sense_threshold_dbm);

        let sender_slot: Vec<usize> = senders.iter().map(|&s| self.slot_of(round, s)).collect();
        let own_slot: Vec<Option<usize>> = (0..n)
            .map(|i| {
                senders
                    .iter()
                    .position(|&s| s.index() == i)
                    .map(|si| sender_slot[si])
            })
            .collect();

        let mut delivered = vec![vec![false; n]; senders.len()];
        let mut collision = vec![false; n];

        for rx in 0..n {
            for slot in 0..slots {
                // Half-duplex: a node neither decodes nor senses during its
                // own transmit slot (it knows its own packet anyway).
                if own_slot[rx] == Some(slot) {
                    continue;
                }
                // Received powers of all transmitters in this slot.
                let txs: Vec<(usize, f64)> = senders
                    .iter()
                    .enumerate()
                    .filter(|(si, _)| sender_slot[*si] == slot)
                    .map(|(si, &s)| {
                        let p =
                            p_tx * self.gain[s.index()][rx] * self.fading(round, s, ProcessId(rx));
                        (si, p)
                    })
                    .collect();
                let interference = self.interference_mw(round, slot);
                let total: f64 = txs.iter().map(|(_, p)| p).sum::<f64>() + interference;

                let busy = total >= sense;
                let mut any_decoded = false;
                for &(si, p) in &txs {
                    let sinr = p / (noise + interference + (total - interference - p));
                    if sinr >= beta {
                        delivered[si][rx] = true;
                        any_decoded = true;
                    }
                }
                if busy && !any_decoded {
                    collision[rx] = true;
                }
            }
        }

        PhyRound {
            senders: senders.to_vec(),
            delivered,
            collision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(n: usize, seed: u64) -> RadioChannel {
        RadioChannel::new(PhyConfig::new(n, seed))
    }

    #[test]
    fn solo_broadcast_reaches_almost_everyone() {
        // Across seeds and rounds, a solo broadcast in a quiet channel is
        // decoded at the overwhelming majority of receivers.
        let mut delivered = 0u64;
        let mut total = 0u64;
        for seed in 0..10 {
            let ch = channel(8, seed);
            for r in 1..50u64 {
                let out = ch.resolve(Round(r), &[ProcessId(0)]);
                for rx in 1..8 {
                    total += 1;
                    delivered += u64::from(out.delivered[0][rx]);
                }
            }
        }
        let rate = delivered as f64 / total as f64;
        assert!(rate > 0.97, "solo delivery rate {rate}");
    }

    #[test]
    fn heavy_contention_loses_messages_but_is_sensed() {
        let ch = channel(8, 3);
        let senders: Vec<ProcessId> = (0..8).map(ProcessId).collect();
        let mut lost = 0u64;
        let mut total = 0u64;
        let mut sensed_when_total_loss = 0u64;
        let mut total_loss_rounds = 0u64;
        for r in 1..200u64 {
            let out = ch.resolve(Round(r), &senders);
            for rx in 0..8 {
                for (si, s) in senders.iter().enumerate() {
                    if s.index() == rx {
                        continue;
                    }
                    total += 1;
                    lost += u64::from(!out.delivered[si][rx]);
                }
                if out.decoded_by(ProcessId(rx)) == 0 {
                    total_loss_rounds += 1;
                    sensed_when_total_loss += u64::from(out.collision[rx]);
                }
            }
        }
        let loss = lost as f64 / total as f64;
        assert!(loss > 0.2, "contention should lose plenty: {loss}");
        if total_loss_rounds > 0 {
            let frac = sensed_when_total_loss as f64 / total_loss_rounds as f64;
            assert!(frac > 0.95, "zero-completeness proxy too weak: {frac}");
        }
    }

    #[test]
    fn capture_effect_exists() {
        // With two senders, some receiver sometimes decodes one of them —
        // the capture effect that breaks the total collision model.
        let ch = channel(8, 5);
        let mut captures = 0u64;
        for r in 1..300u64 {
            let out = ch.resolve(Round(r), &[ProcessId(0), ProcessId(1)]);
            for rx in 2..8 {
                if out.delivered[0][rx] ^ out.delivered[1][rx] {
                    captures += 1;
                }
            }
        }
        assert!(captures > 0, "no capture in 300 contended rounds");
    }

    #[test]
    fn interference_creates_false_positives_until_horizon() {
        let cfg = PhyConfig::new(4, 7).with_interference(0.9, Some(Round(100)));
        let ch = RadioChannel::new(cfg);
        // No senders at all: any collision flag is a false positive.
        let mut early = 0u64;
        for r in 1..100u64 {
            let out = ch.resolve(Round(r), &[]);
            early += out.collision.iter().filter(|&&c| c).count() as u64;
        }
        assert!(early > 0, "interference should trigger false positives");
        for r in 100..200u64 {
            let out = ch.resolve(Round(r), &[]);
            assert!(
                out.collision.iter().all(|&c| !c),
                "false positive after interference horizon at round {r}"
            );
        }
    }

    #[test]
    fn resolution_is_deterministic() {
        let ch = channel(6, 11);
        let senders = [ProcessId(1), ProcessId(4)];
        let a = ch.resolve(Round(17), &senders);
        let b = ch.resolve(Round(17), &senders);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.collision, b.collision);
    }
}
