//! The slotted SINR channel.

use crate::config::PhyConfig;
use crate::hash;
use std::cell::RefCell;
use wan_sim::{ProcessId, Round};

/// Everything the radio resolved for one round: per-(sender, receiver)
/// deliveries and per-receiver carrier-sense collision flags.
///
/// The buffers are reusable: [`RadioChannel::resolve_into`] re-keys an
/// existing `PhyRound` without releasing its storage, so a steady-state
/// resolution allocates nothing. The delivery matrix is stored flat
/// (row-major by sender index) behind the [`PhyRound::delivered`]
/// accessor.
#[derive(Debug, Clone, Default)]
pub struct PhyRound {
    /// The broadcasters, in ascending order.
    senders: Vec<ProcessId>,
    /// Number of process indices (the row length of `delivered`).
    n: usize,
    /// `delivered[si * n + r]`: did receiver `r` decode sender
    /// `senders[si]`'s packet (self-reception excluded here; the engine
    /// adds it).
    delivered: Vec<bool>,
    /// Per-receiver collision flag from the carrier-sensing detector rule:
    /// some foreign slot was energy-busy but yielded no decode.
    collision: Vec<bool>,
}

impl PhyRound {
    /// An empty round, ready to be filled by
    /// [`RadioChannel::resolve_into`].
    pub fn new() -> Self {
        PhyRound::default()
    }

    /// The broadcasters, in ascending order.
    pub fn senders(&self) -> &[ProcessId] {
        &self.senders
    }

    /// Whether receiver `rx` decoded sender `senders[si]`'s packet.
    pub fn delivered(&self, si: usize, rx: usize) -> bool {
        self.delivered[si * self.n + rx]
    }

    /// Per-receiver carrier-sense collision flags (length `n`).
    pub fn collisions(&self) -> &[bool] {
        &self.collision
    }

    /// Whether receiver `rx` sensed a busy-but-undecoded slot.
    pub fn collision(&self, rx: ProcessId) -> bool {
        self.collision[rx.index()]
    }

    /// How many of the round's broadcasts receiver `r` decoded (not
    /// counting its own).
    pub fn decoded_by(&self, r: ProcessId) -> usize {
        (0..self.senders.len())
            .filter(|&si| self.delivered(si, r.index()))
            .count()
    }

    /// Re-keys the buffers for a new round, keeping their storage.
    fn clear_and_resize(&mut self, senders: &[ProcessId], n: usize) {
        self.senders.clear();
        self.senders.extend_from_slice(senders);
        self.n = n;
        self.delivered.clear();
        self.delivered.resize(senders.len() * n, false);
        self.collision.clear();
        self.collision.resize(n, false);
    }
}

/// Reusable intermediate buffers of [`RadioChannel::resolve_into`], kept
/// across calls so a steady-state resolution performs no heap allocation.
#[derive(Debug, Clone, Default)]
struct ResolveScratch {
    /// Slot chosen by each sender (parallel to the sender list).
    sender_slot: Vec<usize>,
    /// Each process's own transmit slot, or `NO_SLOT` for non-senders.
    own_slot: Vec<usize>,
    /// Per-sender fading-hash prefix over `(seed, salt, round, tx)`;
    /// the receiver index is folded in last (see [`hash::extend`]).
    fading_prefix: Vec<u64>,
    /// Counting-sort offsets: senders of slot `k` occupy
    /// `slot_senders[slot_start[k]..slot_start[k + 1]]`.
    slot_start: Vec<usize>,
    /// Write cursors used while building the counting sort.
    slot_cursor: Vec<usize>,
    /// Sender indices grouped by slot, ascending within each group (the
    /// counting sort is stable), so per-receiver power sums visit the
    /// same terms in the same order as the scalar reference.
    slot_senders: Vec<usize>,
    /// Received powers of the current slot: `power[k * n + rx]` for the
    /// `k`-th sender of the group.
    power: Vec<f64>,
    /// Per-receiver running power totals for the current slot.
    acc: Vec<f64>,
    /// Per-receiver "decoded someone this slot" flags.
    decoded: Vec<bool>,
}

/// Sentinel for "not transmitting" in `ResolveScratch::own_slot` (a real
/// slot index is always `< slots_per_round`).
const NO_SLOT: usize = usize::MAX;

/// The radio: static geometry and link gains, plus pure-function fading and
/// interference realizations per round.
#[derive(Debug, Clone)]
pub struct RadioChannel {
    cfg: PhyConfig,
    /// Node positions (metres).
    positions: Vec<(f64, f64)>,
    /// Static linear link gains (path loss × shadowing), row-major:
    /// entry `i * n + j` is the gain from `i` to `j`, symmetric. See
    /// [`RadioChannel::gain`].
    gain: Vec<f64>,
    /// Reusable per-resolve buffers (interior mutability keeps
    /// [`RadioChannel::resolve_into`] callable through `&self`, which
    /// every read-only consumer already relies on).
    scratch: RefCell<ResolveScratch>,
}

impl RadioChannel {
    /// Builds the radio: places nodes uniformly in the disc and fixes the
    /// static gains.
    pub fn new(cfg: PhyConfig) -> Self {
        assert!(cfg.n >= 1, "need at least one node");
        assert!(cfg.slots_per_round >= 1, "need at least one slot");
        let positions: Vec<(f64, f64)> = (0..cfg.n)
            .map(|i| {
                let r = cfg.radius_m * hash::uniform(&[cfg.seed, 0xB0, i as u64]).sqrt();
                let theta = 2.0 * std::f64::consts::PI * hash::uniform(&[cfg.seed, 0xA1, i as u64]);
                (r * theta.cos(), r * theta.sin())
            })
            .collect();
        let mut gain = vec![0.0; cfg.n * cfg.n];
        for i in 0..cfg.n {
            for j in 0..cfg.n {
                if i == j {
                    continue;
                }
                let (a, b) = (i.min(j) as u64, i.max(j) as u64);
                let (xi, yi) = positions[i];
                let (xj, yj) = positions[j];
                let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().max(1.0);
                let path = d.powf(-cfg.pathloss_exp);
                let shadow_db =
                    cfg.shadowing_sigma_db * hash::standard_normal(&[cfg.seed, 0x5D, a, b]);
                gain[i * cfg.n + j] = path * PhyConfig::db_to_linear(shadow_db);
            }
        }
        RadioChannel {
            cfg,
            positions,
            gain,
            scratch: RefCell::new(ResolveScratch::default()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PhyConfig {
        &self.cfg
    }

    /// Node positions (for visualization / tests).
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    /// The static linear link gain from `i` to `j` (zero on the diagonal):
    /// one row-major indexed load, no pointer chase per SINR term.
    #[inline]
    pub fn gain(&self, i: usize, j: usize) -> f64 {
        self.gain[i * self.cfg.n + j]
    }

    /// Slot chosen by `sender` in `round`.
    fn slot_of(&self, round: Round, sender: ProcessId) -> usize {
        (hash::hash_tuple(&[self.cfg.seed, 0x510D, round.0, sender.index() as u64])
            % self.cfg.slots_per_round as u64) as usize
    }

    /// Rayleigh power fading for (round, tx, rx). The hot kernel inlines
    /// this via a hoisted [`hash::hash_tuple`] prefix plus
    /// [`hash::exponential_extend`]; the scalar reference keeps calling
    /// it whole so the oracle stays byte-for-byte the seed-era code.
    #[cfg(test)]
    fn fading(&self, round: Round, tx: ProcessId, rx: ProcessId) -> f64 {
        hash::exponential(&[
            self.cfg.seed,
            0xFAD3,
            round.0,
            tx.index() as u64,
            rx.index() as u64,
        ])
    }

    /// External interference burst power (linear mW) in (round, slot).
    fn interference_mw(&self, round: Round, slot: usize) -> f64 {
        if self.cfg.interference_prob <= 0.0 {
            return 0.0;
        }
        if self.cfg.interference_until.is_some_and(|u| round >= u) {
            return 0.0;
        }
        let u = hash::uniform(&[self.cfg.seed, 0x1F7, round.0, slot as u64]);
        if u < self.cfg.interference_prob {
            PhyConfig::dbm_to_mw(self.cfg.interference_power_dbm)
        } else {
            0.0
        }
    }

    /// Resolves one round into a fresh [`PhyRound`]. Convenience wrapper
    /// over [`RadioChannel::resolve_into`] for callers that keep the
    /// result; hot paths reuse one `PhyRound` instead.
    pub fn resolve(&self, round: Round, senders: &[ProcessId]) -> PhyRound {
        let mut out = PhyRound::new();
        self.resolve_into(round, senders, &mut out);
        out
    }

    /// Resolves one round — slot choices, fading, SINR decoding with
    /// capture, carrier sensing — into `out`, whose previous contents are
    /// discarded and whose storage is reused. After warm-up (buffers at
    /// steady-state capacity) a call performs no heap allocation.
    ///
    /// # Summation-order invariant
    ///
    /// Golden summaries, sweep-cache canary fingerprints, and the
    /// serial-vs-parallel byte-identity tests all hash the delivered
    /// bits this function produces, and those bits come from `f64`
    /// comparisons against non-associative floating-point sums. The
    /// per-receiver slot power total MUST therefore accumulate the
    /// senders of a slot **in ascending sender-list order** — the order
    /// the original per-(rx, slot) scalar loop used — or rounding
    /// differences flip marginal SINR decisions and every golden
    /// changes. The slot-major kernel below preserves this by grouping
    /// senders with a *stable* counting sort and streaming each group in
    /// order; `resolve_scalar_reference` plus a proptest in the test
    /// module pin the equivalence bit-for-bit.
    pub fn resolve_into(&self, round: Round, senders: &[ProcessId], out: &mut PhyRound) {
        let n = self.cfg.n;
        let slots = self.cfg.slots_per_round;
        let p_tx = PhyConfig::dbm_to_mw(self.cfg.tx_power_dbm);
        let noise = PhyConfig::dbm_to_mw(self.cfg.noise_floor_dbm);
        let beta = PhyConfig::db_to_linear(self.cfg.sinr_threshold_db);
        let sense = PhyConfig::dbm_to_mw(self.cfg.sense_threshold_dbm);

        let mut scratch = self.scratch.borrow_mut();
        let ResolveScratch {
            sender_slot,
            own_slot,
            fading_prefix,
            slot_start,
            slot_cursor,
            slot_senders,
            power,
            acc,
            decoded,
        } = &mut *scratch;

        // Per-sender precomputation, hoisted out of the slot sweep: the
        // slot choice, the half-duplex mask, and the fading-hash prefix
        // (4 of the 5 splitmix rounds per (round, tx, rx) draw).
        sender_slot.clear();
        sender_slot.extend(senders.iter().map(|&s| self.slot_of(round, s)));
        own_slot.clear();
        own_slot.resize(n, NO_SLOT);
        fading_prefix.clear();
        for (si, &s) in senders.iter().enumerate() {
            own_slot[s.index()] = sender_slot[si];
            fading_prefix.push(hash::hash_tuple(&[
                self.cfg.seed,
                0xFAD3,
                round.0,
                s.index() as u64,
            ]));
        }

        // Stable counting sort of sender indices by slot: ascending
        // within each group, as the summation-order invariant requires.
        slot_start.clear();
        slot_start.resize(slots + 1, 0);
        for &sl in sender_slot.iter() {
            slot_start[sl + 1] += 1;
        }
        for k in 0..slots {
            slot_start[k + 1] += slot_start[k];
        }
        slot_cursor.clear();
        slot_cursor.extend_from_slice(&slot_start[..slots]);
        slot_senders.clear();
        slot_senders.resize(senders.len(), 0);
        for (si, &sl) in sender_slot.iter().enumerate() {
            slot_senders[slot_cursor[sl]] = si;
            slot_cursor[sl] += 1;
        }

        let ns = senders.len();
        if power.len() < ns * n {
            power.resize(ns * n, 0.0);
        }
        acc.clear();
        acc.resize(n, 0.0);
        decoded.clear();
        decoded.resize(n, false);

        out.clear_and_resize(senders, n);

        // Fixed-length reslices: one bounds check each here buys
        // check-free (and vectorizable, where `ln` permits) inner loops.
        let own_slot = &own_slot[..n];
        let acc = &mut acc[..n];
        let decoded = &mut decoded[..n];
        let delivered = &mut out.delivered[..ns * n];
        let collision = &mut out.collision[..n];

        // Bit-identity notes for the specializations below. All powers
        // are finite and non-negative (`p_tx > 0`, gains ≥ 0, fading
        // draws are finite and positive), so for every value `x` in
        // play: `x + 0.0 == x`, `x - 0.0 == x`, and `x - x == +0.0`
        // exactly. A zero gain (the diagonal) forces `p = +0.0`
        // regardless of the fading draw, so the draw may be skipped.
        // `interference_mw` returns literal `0.0` on quiet slots, which
        // lets the quiet-channel kernels drop the interference terms
        // from the seed-era expression without changing one bit.
        for slot in 0..slots {
            let group = &slot_senders[slot_start[slot]..slot_start[slot + 1]];
            let interference = self.interference_mw(round, slot);

            if group.is_empty() {
                // No transmitters: the slot total is pure interference,
                // sensed as a collision by everyone when above threshold
                // (nobody transmits here, so half-duplex never masks it).
                if interference >= sense {
                    collision.fill(true);
                }
                continue;
            }

            // Fused single-sender quiet-slot kernel: `total == p`, the
            // SINR denominator collapses to `noise + (p - p) == noise`
            // (exact — see above), so one pass decodes and senses.
            if interference == 0.0 {
                if let &[si] = group {
                    let tx = senders[si].index();
                    let prefix = fading_prefix[si];
                    let gain_row = &self.gain[tx * n..(tx + 1) * n];
                    let delivered_row = &mut delivered[si * n..(si + 1) * n];
                    for rx in 0..n {
                        let g = gain_row[rx];
                        let p = if g > 0.0 {
                            p_tx * g * hash::exponential_extend(prefix, rx as u64)
                        } else {
                            0.0
                        };
                        let ok = own_slot[rx] != slot;
                        let del = (p / noise >= beta) & ok;
                        delivered_row[rx] = del;
                        collision[rx] |= ok & !del & (p >= sense);
                    }
                    continue;
                }
            }

            // Pass 1: stream each sender's contiguous gain row into the
            // per-receiver accumulators, in group (= sender-list) order.
            // A sender's own entry is the zero diagonal gain, so its
            // accumulator contribution is an exact `+0.0` (and the
            // column is masked out below anyway).
            acc.fill(0.0);
            for (k, &si) in group.iter().enumerate() {
                let tx = senders[si].index();
                let prefix = fading_prefix[si];
                let gain_row = &self.gain[tx * n..(tx + 1) * n];
                let power_row = &mut power[k * n..(k + 1) * n];
                for rx in 0..n {
                    let g = gain_row[rx];
                    let p = if g > 0.0 {
                        p_tx * g * hash::exponential_extend(prefix, rx as u64)
                    } else {
                        0.0
                    };
                    power_row[rx] = p;
                    acc[rx] += p;
                }
            }

            // Pass 2: decode every receiver of the slot in one
            // branch-light sweep. Half-duplex is a hoisted mask: a node
            // neither decodes nor senses during its own transmit slot.
            decoded.fill(false);
            if interference == 0.0 {
                // Quiet channel: `total == acc[rx]` exactly, so the
                // denominator is `noise + (acc[rx] - p)`.
                for (k, &si) in group.iter().enumerate() {
                    let power_row = &power[k * n..(k + 1) * n];
                    let delivered_row = &mut delivered[si * n..(si + 1) * n];
                    for rx in 0..n {
                        let p = power_row[rx];
                        let sinr = p / (noise + (acc[rx] - p));
                        let del = (sinr >= beta) & (own_slot[rx] != slot);
                        delivered_row[rx] = del;
                        decoded[rx] |= del;
                    }
                }
                for rx in 0..n {
                    collision[rx] |= (own_slot[rx] != slot) & !decoded[rx] & (acc[rx] >= sense);
                }
            } else {
                // `noise + interference` is slot-constant; the rest of
                // the seed-era expression is kept verbatim (its
                // parenthesization is `(noise + interference) +
                // ((total - interference) - p)`).
                let ni = noise + interference;
                for (k, &si) in group.iter().enumerate() {
                    let power_row = &power[k * n..(k + 1) * n];
                    let delivered_row = &mut delivered[si * n..(si + 1) * n];
                    for rx in 0..n {
                        let p = power_row[rx];
                        let total = acc[rx] + interference;
                        let sinr = p / (ni + (total - interference - p));
                        let del = (sinr >= beta) & (own_slot[rx] != slot);
                        delivered_row[rx] = del;
                        decoded[rx] |= del;
                    }
                }
                for rx in 0..n {
                    collision[rx] |=
                        (own_slot[rx] != slot) & !decoded[rx] & (acc[rx] + interference >= sense);
                }
            }
        }
    }

    /// The seed-era per-(receiver, slot) scalar resolver, retained
    /// verbatim as the bit-identity oracle for the slot-major kernel
    /// (see the proptest in the test module).
    #[cfg(test)]
    fn resolve_scalar_reference(&self, round: Round, senders: &[ProcessId]) -> PhyRound {
        let n = self.cfg.n;
        let slots = self.cfg.slots_per_round;
        let p_tx = PhyConfig::dbm_to_mw(self.cfg.tx_power_dbm);
        let noise = PhyConfig::dbm_to_mw(self.cfg.noise_floor_dbm);
        let beta = PhyConfig::db_to_linear(self.cfg.sinr_threshold_db);
        let sense = PhyConfig::dbm_to_mw(self.cfg.sense_threshold_dbm);

        let sender_slot: Vec<usize> = senders.iter().map(|&s| self.slot_of(round, s)).collect();
        let mut own_slot = vec![NO_SLOT; n];
        for (si, &s) in senders.iter().enumerate() {
            own_slot[s.index()] = sender_slot[si];
        }

        let mut out = PhyRound::new();
        out.clear_and_resize(senders, n);
        let mut txs: Vec<(usize, f64)> = Vec::new();

        #[allow(clippy::needless_range_loop)] // `rx` indexes own_slot, gains, and out
        for rx in 0..n {
            for slot in 0..slots {
                if own_slot[rx] == slot {
                    continue;
                }
                txs.clear();
                for (si, &s) in senders.iter().enumerate() {
                    if sender_slot[si] == slot {
                        let p =
                            p_tx * self.gain(s.index(), rx) * self.fading(round, s, ProcessId(rx));
                        txs.push((si, p));
                    }
                }
                let interference = self.interference_mw(round, slot);
                let total: f64 = txs.iter().map(|(_, p)| p).sum::<f64>() + interference;

                let busy = total >= sense;
                let mut any_decoded = false;
                for &(si, p) in txs.iter() {
                    let sinr = p / (noise + interference + (total - interference - p));
                    if sinr >= beta {
                        out.delivered[si * n + rx] = true;
                        any_decoded = true;
                    }
                }
                if busy && !any_decoded {
                    out.collision[rx] = true;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn channel(n: usize, seed: u64) -> RadioChannel {
        RadioChannel::new(PhyConfig::new(n, seed))
    }

    #[test]
    fn slot_major_matches_scalar_reference_exhaustively() {
        // Dense deterministic sweep: every sender-count from silence to
        // all-n, across rounds, on a channel with interference bursts in
        // play — the batched kernel must be bit-for-bit the scalar loop.
        let cfg = PhyConfig::new(6, 21).with_interference(0.5, Some(Round(30)));
        let ch = RadioChannel::new(cfg);
        let mut out = PhyRound::new();
        for r in 1..40u64 {
            for k in 0..=6usize {
                let senders: Vec<ProcessId> = (0..k).map(ProcessId).collect();
                ch.resolve_into(Round(r), &senders, &mut out);
                let reference = ch.resolve_scalar_reference(Round(r), &senders);
                assert_eq!(out.delivered, reference.delivered, "round {r}, {k} senders");
                assert_eq!(out.collision, reference.collision, "round {r}, {k} senders");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn slot_major_matches_scalar_reference(
            n in 1usize..20,
            slots in 1usize..12,
            seed in 0u64..1000,
            round in 1u64..500,
            sender_bits in 0u32..(1 << 20),
        ) {
            let mut cfg = PhyConfig::new(n, seed);
            cfg.slots_per_round = slots;
            if seed % 3 == 0 {
                cfg = cfg.with_interference(0.4, Some(Round(250)));
            }
            let ch = RadioChannel::new(cfg);
            let senders: Vec<ProcessId> = (0..n)
                .filter(|&i| sender_bits & (1 << i) != 0)
                .map(ProcessId)
                .collect();
            let batched = ch.resolve(Round(round), &senders);
            let reference = ch.resolve_scalar_reference(Round(round), &senders);
            prop_assert_eq!(&batched.delivered, &reference.delivered);
            prop_assert_eq!(&batched.collision, &reference.collision);
        }
    }

    #[test]
    fn solo_broadcast_reaches_almost_everyone() {
        // Across seeds and rounds, a solo broadcast in a quiet channel is
        // decoded at the overwhelming majority of receivers.
        let mut delivered = 0u64;
        let mut total = 0u64;
        for seed in 0..10 {
            let ch = channel(8, seed);
            for r in 1..50u64 {
                let out = ch.resolve(Round(r), &[ProcessId(0)]);
                for rx in 1..8 {
                    total += 1;
                    delivered += u64::from(out.delivered(0, rx));
                }
            }
        }
        let rate = delivered as f64 / total as f64;
        assert!(rate > 0.97, "solo delivery rate {rate}");
    }

    #[test]
    fn heavy_contention_loses_messages_but_is_sensed() {
        let ch = channel(8, 3);
        let senders: Vec<ProcessId> = (0..8).map(ProcessId).collect();
        let mut lost = 0u64;
        let mut total = 0u64;
        let mut sensed_when_total_loss = 0u64;
        let mut total_loss_rounds = 0u64;
        for r in 1..200u64 {
            let out = ch.resolve(Round(r), &senders);
            for rx in 0..8 {
                for (si, s) in senders.iter().enumerate() {
                    if s.index() == rx {
                        continue;
                    }
                    total += 1;
                    lost += u64::from(!out.delivered(si, rx));
                }
                if out.decoded_by(ProcessId(rx)) == 0 {
                    total_loss_rounds += 1;
                    sensed_when_total_loss += u64::from(out.collision(ProcessId(rx)));
                }
            }
        }
        let loss = lost as f64 / total as f64;
        assert!(loss > 0.2, "contention should lose plenty: {loss}");
        if total_loss_rounds > 0 {
            let frac = sensed_when_total_loss as f64 / total_loss_rounds as f64;
            assert!(frac > 0.95, "zero-completeness proxy too weak: {frac}");
        }
    }

    #[test]
    fn capture_effect_exists() {
        // With two senders, some receiver sometimes decodes one of them —
        // the capture effect that breaks the total collision model.
        let ch = channel(8, 5);
        let mut captures = 0u64;
        for r in 1..300u64 {
            let out = ch.resolve(Round(r), &[ProcessId(0), ProcessId(1)]);
            for rx in 2..8 {
                if out.delivered(0, rx) ^ out.delivered(1, rx) {
                    captures += 1;
                }
            }
        }
        assert!(captures > 0, "no capture in 300 contended rounds");
    }

    #[test]
    fn interference_creates_false_positives_until_horizon() {
        let cfg = PhyConfig::new(4, 7).with_interference(0.9, Some(Round(100)));
        let ch = RadioChannel::new(cfg);
        // No senders at all: any collision flag is a false positive.
        let mut early = 0u64;
        for r in 1..100u64 {
            let out = ch.resolve(Round(r), &[]);
            early += out.collisions().iter().filter(|&&c| c).count() as u64;
        }
        assert!(early > 0, "interference should trigger false positives");
        for r in 100..200u64 {
            let out = ch.resolve(Round(r), &[]);
            assert!(
                out.collisions().iter().all(|&c| !c),
                "false positive after interference horizon at round {r}"
            );
        }
    }

    #[test]
    fn resolution_is_deterministic() {
        let ch = channel(6, 11);
        let senders = [ProcessId(1), ProcessId(4)];
        let a = ch.resolve(Round(17), &senders);
        let b = ch.resolve(Round(17), &senders);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.collision, b.collision);
    }

    #[test]
    fn resolve_into_reuses_buffers_and_matches_resolve() {
        let ch = channel(6, 13);
        let mut reused = PhyRound::new();
        for r in 1..40u64 {
            let senders = [ProcessId(r as usize % 6), ProcessId((r as usize + 2) % 6)];
            ch.resolve_into(Round(r), &senders, &mut reused);
            let fresh = ch.resolve(Round(r), &senders);
            assert_eq!(reused.senders(), fresh.senders());
            assert_eq!(reused.delivered, fresh.delivered);
            assert_eq!(reused.collision, fresh.collision);
        }
        // Shrinking rounds must not leak stale state.
        ch.resolve_into(Round(50), &[], &mut reused);
        assert!(reused.senders().is_empty());
        assert_eq!(reused.decoded_by(ProcessId(0)), 0);
    }

    #[test]
    fn gain_is_row_major_symmetric_and_matches_nested_reference() {
        // Bug-adjacent pin for the flat layout: recompute the gains the
        // way the seed-era nested `Vec<Vec<f64>>` did and require exact
        // equality, plus the symmetry the shared shadowing term implies.
        let cfg = PhyConfig::new(7, 42);
        let ch = RadioChannel::new(cfg);
        let positions = ch.positions();
        let mut nested = vec![vec![0.0f64; cfg.n]; cfg.n];
        #[allow(clippy::needless_range_loop)] // `i`/`j` index positions and nested
        for i in 0..cfg.n {
            for j in 0..cfg.n {
                if i == j {
                    continue;
                }
                let (a, b) = (i.min(j) as u64, i.max(j) as u64);
                let (xi, yi) = positions[i];
                let (xj, yj) = positions[j];
                let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().max(1.0);
                let path = d.powf(-cfg.pathloss_exp);
                let shadow_db =
                    cfg.shadowing_sigma_db * hash::standard_normal(&[cfg.seed, 0x5D, a, b]);
                nested[i][j] = path * PhyConfig::db_to_linear(shadow_db);
            }
        }
        #[allow(clippy::needless_range_loop)] // `i`/`j` index both layouts
        for i in 0..cfg.n {
            for j in 0..cfg.n {
                assert_eq!(ch.gain(i, j), nested[i][j], "gain({i}, {j})");
                assert_eq!(ch.gain(i, j), ch.gain(j, i), "symmetry ({i}, {j})");
            }
            assert_eq!(ch.gain(i, i), 0.0, "diagonal");
        }
    }
}
