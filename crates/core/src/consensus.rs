//! The consensus problem of Section 6.

use crate::value::Value;
use wan_sim::Automaton;

/// A process automaton that participates in consensus: it starts with an
/// initial value from `V` and may eventually decide a value from `V`.
///
/// The three correctness properties (Section 6) are *judged from outside* by
/// [`crate::checker`]:
///
/// 1. **Agreement** — no two processes decide different values;
/// 2. **Validity** — strong: the decision is some process's initial value;
///    uniform (weaker, used by the lower bounds): if all initial values are
///    `v`, only `v` may be decided;
/// 3. **Termination** — all correct processes eventually decide.
pub trait ConsensusAutomaton: Automaton {
    /// The initial value this process was started with.
    fn initial_value(&self) -> Value;

    /// The decided value, if this process has decided.
    fn decision(&self) -> Option<Value>;

    /// Whether this process has halted (decided and stopped participating).
    /// In every Section 7 algorithm this coincides with having decided.
    fn halted(&self) -> bool {
        self.decision().is_some()
    }
}
