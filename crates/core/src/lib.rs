//! # ccwan-core: the consensus problem and its algorithms
//!
//! This crate implements Sections 6 and 7 of Newport '05: the fault-tolerant
//! consensus problem for crash-prone processes on an unreliable single-hop
//! wireless channel, and the four matching upper-bound algorithms:
//!
//! | Algorithm | Module | Detector | Manager | Delivery | Rounds |
//! |---|---|---|---|---|---|
//! | Algorithm 1 (§7.1) | [`alg1`] | maj-⋄AC | wake-up | ECF | `CST + 2` |
//! | Algorithm 2 (§7.2) | [`alg2`] | 0-⋄AC | wake-up | ECF | `CST + 2(⌈lg \|V\|⌉+1)` |
//! | §7.3 protocol | [`alg3`] | 0-⋄AC | wake-up | ECF | `CST + Θ(min{lg \|V\|, lg \|I\|})` |
//! | Algorithm 3 (§7.4) | [`alg4`] | 0-AC | none | none | `8·lg \|V\|` after failures cease |
//!
//! Supporting pieces: value domains with the `V^{0,1}` binary encoding
//! ([`value`]), identifier spaces ([`uid`]), the consensus automaton trait
//! ([`consensus`]), the agreement/validity/termination judge ([`checker`]),
//! the communication stabilization time of Definition 20 ([`cst`]), the run
//! harness ([`harness`]), the balanced search tree walked by Algorithm 3
//! ([`bst`]), and deliberately broken strawmen for the impossibility
//! demonstrations ([`strawman`]).
//!
//! ## Quick start
//!
//! ```
//! use ccwan_core::alg1::{self, MajEcfConsensus};
//! use ccwan_core::{ConsensusRun, Value, ValueDomain};
//! use wan_cd::{CdClass, ClassDetector, FreedomPolicy};
//! use wan_cm::FairWakeUp;
//! use wan_sim::loss::{Ecf, RandomLoss};
//! use wan_sim::crash::NoCrashes;
//! use wan_sim::{Components, Round};
//!
//! let domain = ValueDomain::new(8);
//! let values: Vec<Value> = [3, 5, 1].into_iter().map(Value).collect();
//! let mut run = ConsensusRun::new(
//!     alg1::processes(domain, &values),
//!     Components {
//!         detector: Box::new(ClassDetector::new(
//!             CdClass::MAJ_EV_AC,
//!             FreedomPolicy::Quiet,
//!             0,
//!         )),
//!         manager: Box::new(FairWakeUp::immediate()),
//!         loss: Box::new(Ecf::new(RandomLoss::new(0.2, 7), Round(1))),
//!         crash: Box::new(NoCrashes),
//!     },
//! );
//! let outcome = run.run_to_completion(Round(100));
//! assert!(outcome.terminated && outcome.is_safe());
//! ```

pub mod alg1;
pub mod alg2;
pub mod alg3;
pub mod alg4;
pub mod bst;
pub mod checker;
pub mod consensus;
pub mod counting;
pub mod cst;
pub mod harness;
pub mod strawman;
pub mod uid;
pub mod value;

pub use checker::{ConsensusOutcome, SafetyViolation};
pub use consensus::ConsensusAutomaton;
pub use cst::Cst;
pub use harness::{rounds_past, ConsensusRun};
pub use uid::{IdSpace, Uid};
pub use value::{Value, ValueDomain};
