//! The outside judge: agreement, validity and termination verdicts.

use crate::value::Value;
use std::fmt;
use wan_sim::{ProcessId, Round};

/// A safety violation detected in a consensus run. The lower-bound
/// demonstrations of `wan-adversary` *construct* runs in which strawman
/// algorithms produce these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyViolation {
    /// Two processes decided different values.
    Agreement {
        /// First decider and its value.
        first: (ProcessId, Value),
        /// Second decider with a conflicting value.
        second: (ProcessId, Value),
    },
    /// A process decided a value that is no process's initial value
    /// (strong validity, Section 6).
    StrongValidity {
        /// The offending decider.
        process: ProcessId,
        /// The decided, un-proposed value.
        value: Value,
    },
    /// All processes started with the same value but some process decided a
    /// different one (uniform validity — the weaker property, so this is
    /// also always a strong-validity violation).
    UniformValidity {
        /// The common initial value.
        proposed: Value,
        /// The offending decider.
        process: ProcessId,
        /// The deviant decision.
        value: Value,
    },
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyViolation::Agreement { first, second } => write!(
                f,
                "agreement violated: {} decided {} but {} decided {}",
                first.0, first.1, second.0, second.1
            ),
            SafetyViolation::StrongValidity { process, value } => write!(
                f,
                "strong validity violated: {process} decided {value}, which nobody proposed"
            ),
            SafetyViolation::UniformValidity {
                proposed,
                process,
                value,
            } => write!(
                f,
                "uniform validity violated: all proposed {proposed} but {process} decided {value}"
            ),
        }
    }
}

/// The observable outcome of a consensus run, assembled by the harness.
#[derive(Debug, Clone)]
pub struct ConsensusOutcome {
    /// Each process's initial value.
    pub initial_values: Vec<Value>,
    /// Each process's decision, if it made one.
    pub decisions: Vec<Option<Value>>,
    /// The round at which each process decided.
    pub decision_rounds: Vec<Option<Round>>,
    /// Which processes never crashed (the *correct* processes,
    /// Definition 13).
    pub correct: Vec<bool>,
    /// Rounds executed in total.
    pub rounds_executed: Round,
    /// Whether every correct process decided within the round cap.
    pub terminated: bool,
}

impl ConsensusOutcome {
    /// The earliest decision round, if anyone decided.
    pub fn first_decision(&self) -> Option<Round> {
        self.decision_rounds.iter().flatten().min().copied()
    }

    /// The latest decision round among deciders.
    pub fn last_decision(&self) -> Option<Round> {
        self.decision_rounds.iter().flatten().max().copied()
    }

    /// The decided value, when the run agreed on one.
    pub fn agreed_value(&self) -> Option<Value> {
        let mut vals = self.decisions.iter().flatten();
        let first = vals.next()?;
        vals.all(|v| v == first).then_some(*first)
    }

    /// Checks agreement and both validity properties, returning every
    /// violation found (empty = safe).
    pub fn safety_violations(&self) -> Vec<SafetyViolation> {
        let mut out = Vec::new();

        // Agreement: compare every decision against the first.
        let deciders: Vec<(ProcessId, Value)> = self
            .decisions
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|v| (ProcessId(i), v)))
            .collect();
        if let Some(&first) = deciders.first() {
            for &other in &deciders[1..] {
                if other.1 != first.1 {
                    out.push(SafetyViolation::Agreement {
                        first,
                        second: other,
                    });
                }
            }
        }

        // Strong validity.
        for &(p, v) in &deciders {
            if !self.initial_values.contains(&v) {
                out.push(SafetyViolation::StrongValidity {
                    process: p,
                    value: v,
                });
            }
        }

        // Uniform validity (implied by strong, but reported separately since
        // the lower bounds argue with it).
        if let Some(&common) = self.initial_values.first() {
            if self.initial_values.iter().all(|&v| v == common) {
                for &(p, v) in &deciders {
                    if v != common {
                        out.push(SafetyViolation::UniformValidity {
                            proposed: common,
                            process: p,
                            value: v,
                        });
                    }
                }
            }
        }

        out
    }

    /// `true` iff no safety violation was detected.
    pub fn is_safe(&self) -> bool {
        self.safety_violations().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(
        initial: Vec<u64>,
        decisions: Vec<Option<u64>>,
        rounds: Vec<Option<u64>>,
    ) -> ConsensusOutcome {
        let n = initial.len();
        ConsensusOutcome {
            initial_values: initial.into_iter().map(Value).collect(),
            decisions: decisions.into_iter().map(|d| d.map(Value)).collect(),
            decision_rounds: rounds.into_iter().map(|r| r.map(Round)).collect(),
            correct: vec![true; n],
            rounds_executed: Round(10),
            terminated: true,
        }
    }

    #[test]
    fn clean_run_is_safe() {
        let o = outcome(
            vec![3, 1, 2],
            vec![Some(1), Some(1), Some(1)],
            vec![Some(4), Some(4), Some(6)],
        );
        assert!(o.is_safe());
        assert_eq!(o.agreed_value(), Some(Value(1)));
        assert_eq!(o.first_decision(), Some(Round(4)));
        assert_eq!(o.last_decision(), Some(Round(6)));
    }

    #[test]
    fn agreement_violation_detected() {
        let o = outcome(vec![0, 1], vec![Some(0), Some(1)], vec![Some(1), Some(1)]);
        let vs = o.safety_violations();
        assert!(matches!(vs[0], SafetyViolation::Agreement { .. }));
        assert_eq!(o.agreed_value(), None);
        let text = vs[0].to_string();
        assert!(text.contains("agreement violated"), "{text}");
    }

    #[test]
    fn strong_validity_violation_detected() {
        let o = outcome(vec![0, 1], vec![Some(7), None], vec![Some(2), None]);
        let vs = o.safety_violations();
        assert!(vs
            .iter()
            .any(|v| matches!(v, SafetyViolation::StrongValidity { .. })));
    }

    #[test]
    fn uniform_validity_violation_detected() {
        // Uniform inputs, deviant output: both uniform- and strong-validity
        // violations fire.
        let o = outcome(vec![4, 4], vec![Some(5), Some(5)], vec![Some(3), Some(3)]);
        let vs = o.safety_violations();
        assert!(vs
            .iter()
            .any(|v| matches!(v, SafetyViolation::UniformValidity { .. })));
        assert!(vs
            .iter()
            .any(|v| matches!(v, SafetyViolation::StrongValidity { .. })));
    }

    #[test]
    fn no_decisions_is_vacuously_safe() {
        let o = outcome(vec![0, 1], vec![None, None], vec![None, None]);
        assert!(o.is_safe());
        assert_eq!(o.agreed_value(), None);
        assert_eq!(o.first_decision(), None);
    }
}
