//! Algorithm 1 (Section 7.1): anonymous consensus with eventual collision
//! freedom and a majority-complete, eventually-accurate collision detector.
//!
//! Two alternating phases, starting at round 1:
//!
//! * **proposal** (odd rounds): contention-manager-active processes
//!   broadcast their estimate; a process that hears no collision and at
//!   least one value adopts the minimum value received;
//! * **veto** (even rounds): a process that heard a collision or more than
//!   one distinct value in the preceding proposal broadcasts `veto`; a
//!   process that passes a veto round with no messages, no collision, and a
//!   *single* value from the proposal decides that value and halts.
//!
//! Majority completeness is what makes the silent-veto decision safe: a
//! process with no collision notification received a strict majority of the
//! proposal's messages, and majority sets intersect, so all silent
//! processes saw the *same* single value (Lemma 5). Theorem 1: terminates by
//! `CST + 2` and tolerates any number of crash failures.

use crate::consensus::ConsensusAutomaton;
use crate::value::{Value, ValueDomain};
use std::collections::BTreeSet;
use wan_sim::{Automaton, CdAdvice, CmAdvice, RoundInput};

/// Messages of Algorithm 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Alg1Msg {
    /// A proposal-phase estimate broadcast.
    Estimate(Value),
    /// A veto-phase complaint.
    Veto,
}

/// The phase of a given round (derived from the number of completed rounds,
/// so all processes stay in lockstep).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Proposal,
    Veto,
}

/// One process of Algorithm 1 — the paper's `(E(maj-⋄AC, WS), V, ECF)`-
/// consensus algorithm. Anonymous: every process runs identical code.
///
/// # Examples
///
/// ```
/// use ccwan_core::alg1::MajEcfConsensus;
/// use ccwan_core::{ConsensusAutomaton, Value, ValueDomain};
///
/// let p = MajEcfConsensus::new(ValueDomain::new(4), Value(2));
/// assert_eq!(p.initial_value(), Value(2));
/// assert_eq!(p.decision(), None);
/// ```
#[derive(Debug, Clone)]
pub struct MajEcfConsensus {
    domain: ValueDomain,
    initial: Value,
    estimate: Value,
    /// `SET(messages)` of the last proposal round (line 8).
    last_proposal_values: BTreeSet<Value>,
    /// Collision advice of the last proposal round (line 9).
    last_proposal_cd: CdAdvice,
    decided: Option<Value>,
    halted: bool,
    rounds_done: u64,
}

impl MajEcfConsensus {
    /// A process with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not in `domain`.
    pub fn new(domain: ValueDomain, initial: Value) -> Self {
        assert!(domain.contains(initial), "initial value outside domain");
        MajEcfConsensus {
            domain,
            initial,
            estimate: initial,
            last_proposal_values: BTreeSet::new(),
            last_proposal_cd: CdAdvice::Null,
            decided: None,
            halted: false,
            rounds_done: 0,
        }
    }

    /// The current estimate (the value this process would decide).
    pub fn estimate(&self) -> Value {
        self.estimate
    }

    fn phase(&self) -> Phase {
        if self.rounds_done.is_multiple_of(2) {
            Phase::Proposal
        } else {
            Phase::Veto
        }
    }
}

impl Automaton for MajEcfConsensus {
    type Msg = Alg1Msg;

    fn message(&self, cm: CmAdvice) -> Option<Alg1Msg> {
        if self.halted {
            return None;
        }
        match self.phase() {
            // Line 6-7: active processes broadcast their estimate.
            Phase::Proposal => cm.is_active().then_some(Alg1Msg::Estimate(self.estimate)),
            // Line 14-15: veto on collision or value disagreement.
            Phase::Veto => (self.last_proposal_cd.is_collision()
                || self.last_proposal_values.len() > 1)
                .then_some(Alg1Msg::Veto),
        }
    }

    fn transition(&mut self, input: RoundInput<'_, Alg1Msg>) {
        let phase = self.phase();
        self.rounds_done += 1;
        if self.halted {
            return;
        }
        match phase {
            Phase::Proposal => {
                let values: BTreeSet<Value> = input
                    .received
                    .support()
                    .filter_map(|m| match m {
                        Alg1Msg::Estimate(v) => Some(*v),
                        Alg1Msg::Veto => None,
                    })
                    .collect();
                // Lines 10-11: adopt the minimum on a clean round.
                if !input.cd.is_collision() {
                    if let Some(&min) = values.iter().next() {
                        debug_assert!(self.domain.contains(min));
                        self.estimate = min;
                    }
                }
                self.last_proposal_values = values;
                self.last_proposal_cd = input.cd;
            }
            Phase::Veto => {
                // Line 18: silent veto round + unique proposal value =>
                // decide. Own vetoes are received back (constraint 5), so a
                // vetoing process never passes this test.
                if input.received.is_empty()
                    && input.cd == CdAdvice::Null
                    && self.last_proposal_values.len() == 1
                {
                    self.decided = Some(self.estimate);
                    self.halted = true;
                }
            }
        }
    }

    fn is_contending(&self) -> bool {
        !self.halted
    }
}

impl ConsensusAutomaton for MajEcfConsensus {
    fn initial_value(&self) -> Value {
        self.initial
    }

    fn decision(&self) -> Option<Value> {
        self.decided
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

/// Builds the full anonymous process vector for a run: one
/// [`MajEcfConsensus`] per initial value.
pub fn processes(domain: ValueDomain, initial_values: &[Value]) -> Vec<MajEcfConsensus> {
    initial_values
        .iter()
        .map(|&v| MajEcfConsensus::new(domain, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ConsensusRun;
    use wan_cd::{CdClass, CheckedDetector, ClassDetector, FreedomPolicy};
    use wan_cm::FairWakeUp;
    use wan_sim::crash::NoCrashes;
    use wan_sim::loss::{Ecf, RandomLoss};
    use wan_sim::{Components, Round};

    fn run_clean(values: &[u64], v_size: u64) -> crate::checker::ConsensusOutcome {
        let domain = ValueDomain::new(v_size);
        let procs = processes(
            domain,
            &values.iter().map(|&v| Value(v)).collect::<Vec<_>>(),
        );
        let components = Components {
            detector: Box::new(
                CheckedDetector::new(
                    ClassDetector::new(CdClass::MAJ_EV_AC, FreedomPolicy::Quiet, 0),
                    CdClass::MAJ_EV_AC,
                )
                .strict(),
            ),
            manager: Box::new(FairWakeUp::immediate()),
            loss: Box::new(Ecf::new(RandomLoss::new(0.0, 0), Round(1))),
            crash: Box::new(NoCrashes),
        };
        let mut run = ConsensusRun::new(procs, components);
        run.run_to_completion(Round(100))
    }

    #[test]
    fn clean_environment_decides_by_cst_plus_2() {
        let outcome = run_clean(&[3, 1, 2, 2], 4);
        assert!(outcome.terminated);
        assert!(outcome.is_safe());
        // CST = 1; Theorem 1: decide by CST + 2.
        assert!(outcome.last_decision().unwrap() <= Round(3));
    }

    #[test]
    fn uniform_inputs_decide_that_value() {
        let outcome = run_clean(&[2, 2, 2], 4);
        assert_eq!(outcome.agreed_value(), Some(Value(2)));
    }

    #[test]
    fn singleton_system_decides_alone() {
        let outcome = run_clean(&[1], 4);
        assert!(outcome.terminated);
        assert_eq!(outcome.agreed_value(), Some(Value(1)));
    }

    #[test]
    fn phase_alternation_and_message_shape() {
        let domain = ValueDomain::new(4);
        let p = MajEcfConsensus::new(domain, Value(3));
        // Round 1 = proposal: broadcasts estimate iff active.
        assert_eq!(
            p.message(CmAdvice::Active),
            Some(Alg1Msg::Estimate(Value(3)))
        );
        assert_eq!(p.message(CmAdvice::Passive), None);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn initial_value_must_be_in_domain() {
        let _ = MajEcfConsensus::new(ValueDomain::new(2), Value(5));
    }
}
