//! Anonymous counting (Section 4.1's separation example).
//!
//! The paper: "There exist simple problems, such as counting the number of
//! anonymous processes in the system, that can easily be shown to be
//! solvable with a k-wake-up service, but impossible with a leader election
//! service (and, thus, wake-up service as well)."
//!
//! This module makes both halves executable:
//!
//! * [`CountingProcess`] counts the roster under a one-shot k-wake-up
//!   service (`wan_cm::KWakeUp`) with a zero-complete, accurate detector
//!   and reliable solo delivery: every process broadcasts throughout its
//!   private block; by the Noise Lemma every block is *audible* (a message
//!   or a `±`) at every process, and with accuracy the first truly silent
//!   round marks the roster's end — the count is the number of audible
//!   rounds, divided by the block length.
//! * The impossibility direction is demonstrated in the tests and in
//!   `tests/` — with a leader election service, executions of n and n+1
//!   anonymous processes are indistinguishable to everyone (the extra
//!   process is never told to speak and an anonymous, advice-following
//!   algorithm keeps it silent), so no correct count can be decided.

use crate::value::Value;
use wan_sim::{Automaton, CdAdvice, CmAdvice, RoundInput};

/// The only message: an anonymous "I exist" beacon.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct HereMsg;

/// One anonymous process of the counting protocol. All processes run
/// identical code (no identifiers anywhere).
#[derive(Debug, Clone)]
pub struct CountingProcess {
    /// Block length of the k-wake-up service in use.
    k: u64,
    /// Rounds (from the first audible round on) that were audible.
    audible_rounds: u64,
    /// Whether the roster has started (first audible round seen).
    started: bool,
    /// The decided population count.
    count: Option<u64>,
}

impl CountingProcess {
    /// A counting process for a k-wake-up service with block length `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64) -> Self {
        assert!(k >= 1, "block length must be positive");
        CountingProcess {
            k,
            audible_rounds: 0,
            started: false,
            count: None,
        }
    }

    /// The decided count, once the roster has closed.
    pub fn count(&self) -> Option<u64> {
        self.count
    }

    /// The decided count as a [`Value`] (for harness reuse).
    pub fn decision(&self) -> Option<Value> {
        self.count.map(Value)
    }
}

impl Automaton for CountingProcess {
    type Msg = HereMsg;

    fn message(&self, cm: CmAdvice) -> Option<HereMsg> {
        // Speak during the private block; stay silent otherwise. (Following
        // the advice is what an anonymous process *can* do — it has no
        // other way to break symmetry.)
        (self.count.is_none() && cm.is_active()).then_some(HereMsg)
    }

    fn transition(&mut self, input: RoundInput<'_, HereMsg>) {
        if self.count.is_some() {
            return;
        }
        let audible = !input.received.is_empty() || input.cd == CdAdvice::Collision;
        if audible {
            self.started = true;
            self.audible_rounds += 1;
        } else if self.started {
            // With zero completeness + accuracy, true silence after the
            // roster started means no process remains unheard.
            debug_assert_eq!(self.audible_rounds % self.k, 0, "ragged roster");
            self.count = Some(self.audible_rounds / self.k);
        }
    }

    fn is_contending(&self) -> bool {
        self.count.is_none()
    }
}

/// Builds `n` anonymous counting processes for block length `k`.
pub fn processes(n: usize, k: u64) -> Vec<CountingProcess> {
    (0..n).map(|_| CountingProcess::new(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wan_cd::{CdClass, CheckedDetector, ClassDetector, FreedomPolicy};
    use wan_cm::{KWakeUp, LeaderElectionService};
    use wan_sim::crash::NoCrashes;
    use wan_sim::loss::NoLoss;
    use wan_sim::{Components, Simulation};

    fn run_counting(n: usize, k: u64, rounds: u64) -> Vec<Option<u64>> {
        let mut sim = Simulation::new(
            processes(n, k),
            Components {
                detector: Box::new(
                    CheckedDetector::new(
                        ClassDetector::new(CdClass::ZERO_AC, FreedomPolicy::Quiet, 0),
                        CdClass::ZERO_AC,
                    )
                    .strict(),
                ),
                manager: Box::new(KWakeUp::new(k, 0)),
                loss: Box::new(NoLoss),
                crash: Box::new(NoCrashes),
            },
        );
        sim.run(rounds);
        sim.processes().iter().map(|p| p.count()).collect()
    }

    #[test]
    fn counts_exactly_with_k_wakeup() {
        for n in 1..=9usize {
            for k in [1u64, 2, 3] {
                let counts = run_counting(n, k, k * n as u64 + 3);
                assert!(
                    counts.iter().all(|&c| c == Some(n as u64)),
                    "n={n} k={k}: {counts:?}"
                );
            }
        }
    }

    #[test]
    fn counting_survives_collision_only_observation() {
        // Even if every beacon is lost, zero completeness keeps each block
        // audible, so the count still comes out right.
        let n = 5;
        let k = 2;
        let mut sim = Simulation::new(
            processes(n, k),
            Components {
                detector: Box::new(
                    CheckedDetector::new(
                        ClassDetector::new(CdClass::ZERO_AC, FreedomPolicy::Quiet, 0),
                        CdClass::ZERO_AC,
                    )
                    .strict(),
                ),
                manager: Box::new(KWakeUp::new(k, 0)),
                loss: Box::new(wan_sim::loss::RandomLoss::new(1.0, 3)),
                crash: Box::new(NoCrashes),
            },
        );
        sim.run(k * n as u64 + 3);
        assert!(sim.processes().iter().all(|p| p.count() == Some(n as u64)));
    }

    #[test]
    fn leader_election_service_cannot_count() {
        // The separation: under a leader election service, systems of
        // different sizes are indistinguishable (only the leader ever
        // speaks), so the counting algorithm either never decides or
        // decides the same — wrong — number for some population.
        let count_under_ls = |n: usize| -> Vec<Option<u64>> {
            let mut sim = Simulation::new(
                processes(n, 1),
                Components {
                    detector: Box::new(ClassDetector::new(
                        CdClass::ZERO_AC,
                        FreedomPolicy::Quiet,
                        0,
                    )),
                    manager: Box::new(LeaderElectionService::min_leader_from_start()),
                    loss: Box::new(NoLoss),
                    crash: Box::new(NoCrashes),
                },
            );
            sim.run(30);
            sim.processes().iter().map(|p| p.count()).collect()
        };
        let two = count_under_ls(2);
        let three = count_under_ls(3);
        // Whatever the algorithm does, the common processes observe the
        // same thing in both systems, so it cannot be right in both.
        let wrong = two
            .iter()
            .zip(three.iter())
            .any(|(a, b)| a == b && (a != &Some(2) || b != &Some(3)));
        assert!(
            wrong,
            "counting looked solvable under LS?! two={two:?} three={three:?}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_rejected() {
        let _ = CountingProcess::new(0);
    }
}
