//! The balanced binary search tree over a value domain that Algorithm 3
//! (Section 7.4) walks: nodes are half-open value ranges, with the midpoint
//! as the node's value.

use crate::value::{Value, ValueDomain};
use std::fmt;

/// A node of the implicit balanced BST over `[0, |V|)`: the half-open range
/// `[lo, hi)` with node value `⌊(lo + hi − 1)/2⌋`-ish midpoint, left child
/// `[lo, mid)` and right child `[mid+1, hi)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct BstNode {
    lo: u64,
    hi: u64,
}

impl BstNode {
    /// The root of the tree over the whole domain.
    pub fn root(domain: ValueDomain) -> Self {
        BstNode {
            lo: 0,
            hi: domain.size(),
        }
    }

    /// The value at this node (`val[curr]` in the pseudocode).
    pub fn value(&self) -> Value {
        Value(self.lo + (self.hi - self.lo) / 2)
    }

    /// The left child, if its range is non-empty.
    pub fn left(&self) -> Option<BstNode> {
        let mid = self.value().0;
        (self.lo < mid).then_some(BstNode {
            lo: self.lo,
            hi: mid,
        })
    }

    /// The right child, if its range is non-empty.
    pub fn right(&self) -> Option<BstNode> {
        let mid = self.value().0;
        (mid + 1 < self.hi).then_some(BstNode {
            lo: mid + 1,
            hi: self.hi,
        })
    }

    /// Whether `v` lies in this node's subtree (`estimate ∈ subtree(curr)`).
    pub fn contains(&self, v: Value) -> bool {
        (self.lo..self.hi).contains(&v.0)
    }

    /// Whether `v` lies in the left child's subtree
    /// (`estimate ∈ left[curr]`).
    pub fn in_left(&self, v: Value) -> bool {
        self.left().is_some_and(|l| l.contains(v))
    }

    /// Whether `v` lies in the right child's subtree
    /// (`estimate ∈ right[curr]`).
    pub fn in_right(&self, v: Value) -> bool {
        self.right().is_some_and(|r| r.contains(v))
    }

    /// Whether this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.left().is_none() && self.right().is_none()
    }

    /// The number of values in this subtree.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// `true` iff the range is empty (never constructed by this API).
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// The depth of the deepest node under the root of a domain of `size`
    /// values: `⌈lg(size+1)⌉`-ish; the walk bound of Theorem 3 uses
    /// `lg |V|` asymptotically.
    pub fn height(domain: ValueDomain) -> u32 {
        64 - domain.size().leading_zeros()
    }
}

impl fmt::Display for BstNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})@{}", self.lo, self.hi, self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_tree_shape() {
        // V = {0..7}: root value 3 (since mid of [0,7) ... size 7).
        let d = ValueDomain::new(7);
        let root = BstNode::root(d);
        assert_eq!(root.value(), Value(3));
        let l = root.left().unwrap();
        let r = root.right().unwrap();
        assert_eq!(l.value(), Value(1));
        assert_eq!(r.value(), Value(5));
        assert!(l.left().unwrap().is_leaf());
        assert_eq!(l.left().unwrap().value(), Value(0));
        assert_eq!(l.right().unwrap().value(), Value(2));
    }

    #[test]
    fn singleton_tree_is_leaf() {
        let d = ValueDomain::new(1);
        let root = BstNode::root(d);
        assert!(root.is_leaf());
        assert_eq!(root.value(), Value(0));
        assert_eq!(root.len(), 1);
        assert!(!root.is_empty());
    }

    #[test]
    fn two_element_tree() {
        let d = ValueDomain::new(2);
        let root = BstNode::root(d);
        assert_eq!(root.value(), Value(1));
        assert_eq!(root.left().unwrap().value(), Value(0));
        assert!(root.right().is_none());
    }

    #[test]
    fn membership_tests() {
        let d = ValueDomain::new(10);
        let root = BstNode::root(d);
        for v in d.values() {
            assert!(root.contains(v));
            assert_eq!(root.in_left(v), v < root.value(), "left membership for {v}");
            assert_eq!(root.in_right(v), v > root.value());
        }
        assert!(!root.contains(Value(10)));
    }

    proptest! {
        /// Every value is reachable from the root by following the
        /// left/right membership tests, within the height bound.
        #[test]
        fn every_value_reachable(size in 1u64..2000, raw in 0u64..2000) {
            let d = ValueDomain::new(size);
            let v = Value(raw % size);
            let mut node = BstNode::root(d);
            let mut steps = 0;
            while node.value() != v {
                node = if node.in_left(v) {
                    node.left().unwrap()
                } else {
                    prop_assert!(node.in_right(v));
                    node.right().unwrap()
                };
                steps += 1;
                prop_assert!(steps <= BstNode::height(d), "walk too deep");
            }
        }

        /// Children partition the parent range minus the midpoint.
        #[test]
        fn children_partition(size in 1u64..2000) {
            let d = ValueDomain::new(size);
            let root = BstNode::root(d);
            let left_len = root.left().map_or(0, |l| l.len());
            let right_len = root.right().map_or(0, |r| r.len());
            prop_assert_eq!(left_len + right_len + 1, root.len());
            // Balance: the halves differ by at most one.
            prop_assert!(left_len.abs_diff(right_len) <= 1);
        }
    }
}
