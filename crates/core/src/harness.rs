//! The run harness: wires an algorithm to an environment, runs to
//! completion, and assembles a judged [`ConsensusOutcome`].

use crate::checker::ConsensusOutcome;
use crate::consensus::ConsensusAutomaton;
use crate::cst::Cst;
use wan_sim::{
    CollisionDetector, CompiledSchedule, Components, ContentionManager, CrashAdversary, DynCrash,
    DynDetector, DynLoss, DynManager, Engine, ExecutionTrace, LossAdversary, Round, TraceDetail,
};

/// A consensus run: an [`Engine`] plus decision-round bookkeeping and the
/// declared CST of its environment.
///
/// Generic over the component types like the engine itself; the defaults
/// are the boxed trait objects, so `ConsensusRun<A>` and
/// [`ConsensusRun::new`] mean exactly what they meant when the harness was
/// fully dynamic. Statically-dispatched runs are built with
/// [`ConsensusRun::from_engine`].
pub struct ConsensusRun<
    A: ConsensusAutomaton,
    CD = DynDetector,
    CM = DynManager,
    L = DynLoss,
    C = DynCrash,
> {
    sim: Engine<A, CD, CM, L, C>,
    decision_rounds: Vec<Option<Round>>,
    cst: Cst,
}

impl<A: ConsensusAutomaton> ConsensusRun<A> {
    /// Builds a fully-dynamic run over the given processes and boxed
    /// environment components.
    pub fn new(procs: Vec<A>, components: Components) -> Self {
        let cst = Cst::from_components(&components);
        let n = procs.len();
        ConsensusRun {
            sim: Engine::new(procs, components),
            decision_rounds: vec![None; n],
            cst,
        }
    }
}

impl<A, CD, CM, L, C> ConsensusRun<A, CD, CM, L, C>
where
    A: ConsensusAutomaton,
    CD: CollisionDetector,
    CM: ContentionManager,
    L: LossAdversary,
    C: CrashAdversary,
{
    /// Wraps an already-built engine (statically dispatched for concrete
    /// component types), reading the declared CST from its components.
    pub fn from_engine(sim: Engine<A, CD, CM, L, C>) -> Self {
        let cst = Cst::from_engine(&sim);
        let n = sim.n();
        ConsensusRun {
            sim,
            decision_rounds: vec![None; n],
            cst,
        }
    }

    /// Builds a statically-dispatched run over the given processes and
    /// concrete environment components.
    pub fn from_parts(procs: Vec<A>, detector: CD, manager: CM, loss: L, crash: C) -> Self {
        Self::from_engine(Engine::from_parts(procs, detector, manager, loss, crash))
    }

    /// Record only receive counts in the trace (cheaper for sweeps).
    #[must_use]
    pub fn with_counts_only(mut self) -> Self {
        self.sim = self.sim.with_detail(TraceDetail::Counts);
        self
    }

    /// Installs a compiled fault-injection schedule on the underlying
    /// engine ([`Engine::with_schedule`]): scheduled scenario events fire
    /// at the start of their rounds, before the components act. `None` is
    /// a no-op, so callers can thread an optional timeline through without
    /// branching. Must be applied before the first step.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Option<CompiledSchedule>) -> Self {
        if let Some(schedule) = schedule {
            self.sim.set_schedule(schedule);
        }
        self
    }

    /// The declared communication stabilization time of the environment.
    pub fn cst(&self) -> Cst {
        self.cst
    }

    /// The underlying engine (read-only).
    pub fn sim(&self) -> &Engine<A, CD, CM, L, C> {
        &self.sim
    }

    /// The recorded execution trace.
    pub fn trace(&self) -> &ExecutionTrace<A::Msg> {
        self.sim.trace()
    }

    /// Executes one round, recording any new decisions.
    pub fn step(&mut self) {
        self.sim.step();
        self.note_decisions();
    }

    /// Executes one round without trace recording, still tracking
    /// decisions (the sweep fast path).
    pub fn step_untraced(&mut self) {
        self.sim.step_untraced();
        self.note_decisions();
    }

    fn note_decisions(&mut self) {
        note_and_check(
            &mut self.decision_rounds,
            self.sim.processes(),
            self.sim.alive(),
            self.sim.current_round(),
        );
    }

    /// Whether every correct (non-crashed) process has decided.
    pub fn all_correct_decided(&self) -> bool {
        self.sim
            .processes()
            .iter()
            .zip(self.sim.alive())
            .all(|(p, &alive)| !alive || p.decision().is_some())
    }

    /// Runs until every correct process has decided, or `cap` rounds have
    /// executed. Returns the judged outcome.
    pub fn run_to_completion(&mut self, cap: Round) -> ConsensusOutcome {
        while !self.all_correct_decided() && self.sim.current_round() < cap {
            self.step();
        }
        self.outcome()
    }

    /// As [`ConsensusRun::run_to_completion`], but skipping all trace
    /// recording: the execution (and therefore the outcome) is identical,
    /// only the per-round bookkeeping disappears. Use for large sweeps
    /// that consume the [`ConsensusOutcome`] and never look at the trace.
    ///
    /// Rides [`Engine::run_until_untraced`], noting decision rounds from
    /// inside the convergence predicate so the whole run stays on the
    /// engine's allocation-free fast path.
    pub fn run_to_completion_untraced(&mut self, cap: Round) -> ConsensusOutcome {
        // Seed-era semantics: a run that needs no further rounds (already
        // converged, or cap already reached) returns its outcome without
        // touching the untraced machinery — in particular without the
        // engine's traced/untraced exclusivity assertion, so finishing a
        // traced run through this method stays a no-op.
        if self.all_correct_decided() || self.sim.current_round() >= cap {
            return self.outcome();
        }
        let decision_rounds = &mut self.decision_rounds;
        self.sim.run_until_untraced(
            |sim| {
                note_and_check(
                    decision_rounds,
                    sim.processes(),
                    sim.alive(),
                    sim.current_round(),
                )
            },
            cap,
        );
        self.outcome()
    }

    /// Runs exactly `rounds` further rounds (for adversarial prefix studies
    /// that must not stop at the first decision).
    pub fn run_rounds(&mut self, rounds: u64) -> ConsensusOutcome {
        for _ in 0..rounds {
            self.step();
        }
        self.outcome()
    }

    /// Assembles the outcome so far.
    pub fn outcome(&self) -> ConsensusOutcome {
        ConsensusOutcome {
            initial_values: self
                .sim
                .processes()
                .iter()
                .map(|p| p.initial_value())
                .collect(),
            decisions: self.sim.processes().iter().map(|p| p.decision()).collect(),
            decision_rounds: self.decision_rounds.clone(),
            correct: self.sim.alive().to_vec(),
            rounds_executed: self.sim.current_round(),
            terminated: self.all_correct_decided(),
        }
    }

    /// Consumes the run and returns the automata and trace.
    pub fn into_parts(self) -> (Vec<A>, ExecutionTrace<A::Msg>) {
        self.sim.into_parts()
    }
}

/// The one statement of the decision-recording rules, shared by the traced
/// step loop ([`ConsensusRun::step`]) and the untraced convergence
/// predicate ([`ConsensusRun::run_to_completion_untraced`]) so the two
/// paths cannot drift: records each process's *first* decision round into
/// `slots` (decisions are only recorded from round 1 on — a process
/// decided at construction keeps `None`) and returns whether every correct
/// (non-crashed) process has decided.
fn note_and_check<A: ConsensusAutomaton>(
    slots: &mut [Option<Round>],
    procs: &[A],
    alive: &[bool],
    round: Round,
) -> bool {
    let mut all_decided = true;
    for ((slot, p), &alive) in slots.iter_mut().zip(procs).zip(alive) {
        match p.decision() {
            Some(_) if round > Round::ZERO => {
                slot.get_or_insert(round);
            }
            Some(_) => {}
            None if alive => all_decided = false,
            None => {}
        }
    }
    all_decided
}

/// Convenience: rounds past a stabilization point, the unit in which the
/// Section 7 bounds are stated (e.g. Theorem 1's `CST + 2`).
pub fn rounds_past(decision: Round, stabilization: Round) -> u64 {
    decision.since(stabilization)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use wan_sim::crash::NoCrashes;
    use wan_sim::loss::NoLoss;
    use wan_sim::{AllActive, AlwaysNull, Automaton, CmAdvice, RoundInput};

    /// Decides its initial value at the end of round `when`.
    struct TimedDecider {
        initial: Value,
        when: u64,
        decided: Option<Value>,
    }

    impl Automaton for TimedDecider {
        type Msg = u8;
        fn message(&self, _cm: CmAdvice) -> Option<u8> {
            None
        }
        fn transition(&mut self, input: RoundInput<'_, u8>) {
            if input.round.0 >= self.when {
                self.decided = Some(self.initial);
            }
        }
        fn is_contending(&self) -> bool {
            self.decided.is_none()
        }
    }

    impl ConsensusAutomaton for TimedDecider {
        fn initial_value(&self) -> Value {
            self.initial
        }
        fn decision(&self) -> Option<Value> {
            self.decided
        }
    }

    fn components() -> Components {
        Components {
            detector: Box::new(AlwaysNull),
            manager: Box::new(AllActive),
            loss: Box::new(NoLoss),
            crash: Box::new(NoCrashes),
        }
    }

    #[test]
    fn records_decision_rounds() {
        let procs = vec![
            TimedDecider {
                initial: Value(7),
                when: 2,
                decided: None,
            },
            TimedDecider {
                initial: Value(7),
                when: 5,
                decided: None,
            },
        ];
        let mut run = ConsensusRun::new(procs, components());
        let outcome = run.run_to_completion(Round(20));
        assert!(outcome.terminated);
        assert_eq!(
            outcome.decision_rounds,
            vec![Some(Round(2)), Some(Round(5))]
        );
        assert_eq!(outcome.agreed_value(), Some(Value(7)));
        assert_eq!(outcome.rounds_executed, Round(5));
        assert!(outcome.is_safe());
    }

    #[test]
    fn cap_stops_non_terminating_runs() {
        let procs = vec![TimedDecider {
            initial: Value(0),
            when: u64::MAX,
            decided: None,
        }];
        let mut run = ConsensusRun::new(procs, components());
        let outcome = run.run_to_completion(Round(8));
        assert!(!outcome.terminated);
        assert_eq!(outcome.rounds_executed, Round(8));
        assert_eq!(outcome.first_decision(), None);
    }

    #[test]
    fn untraced_completion_is_a_noop_on_a_converged_traced_run() {
        // Regression: finishing a traced run through the untraced entry
        // point must return the outcome, not trip the engine's
        // traced/untraced exclusivity assertion.
        let procs = vec![TimedDecider {
            initial: Value(3),
            when: 2,
            decided: None,
        }];
        let mut run = ConsensusRun::new(procs, components());
        let traced = run.run_to_completion(Round(10));
        assert!(traced.terminated);
        let again = run.run_to_completion_untraced(Round(10));
        assert_eq!(again.decision_rounds, traced.decision_rounds);
        // Same for a capped, unconverged traced run.
        let mut capped = ConsensusRun::new(
            vec![TimedDecider {
                initial: Value(0),
                when: u64::MAX,
                decided: None,
            }],
            components(),
        );
        capped.run_to_completion(Round(4));
        let outcome = capped.run_to_completion_untraced(Round(4));
        assert!(!outcome.terminated);
        assert_eq!(outcome.rounds_executed, Round(4));
    }

    #[test]
    fn rounds_past_helper() {
        assert_eq!(rounds_past(Round(7), Round(5)), 2);
        assert_eq!(rounds_past(Round(5), Round(7)), 0);
    }
}
