//! Communication stabilization time (Definition 20).

use std::fmt;
use wan_sim::{CollisionDetector, Components, ContentionManager, Engine, LossAdversary, Round};

/// The three stabilization rounds whose maximum is the *communication
/// stabilization time* `CST = max{r_cf, r_acc, r_wake}` (Definition 20):
/// from `CST` on, solo broadcasts are delivered everywhere, the collision
/// detector is accurate, and exactly one process is advised active per
/// round. All the Section 7 termination bounds are stated relative to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cst {
    /// Eventual collision freedom round `r_cf` (Property 1), if declared.
    pub r_cf: Option<Round>,
    /// Detector accuracy round `r_acc` (Property 9), if declared.
    pub r_acc: Option<Round>,
    /// Contention manager stabilization round `r_wake` (Property 2), if
    /// declared.
    pub r_wake: Option<Round>,
}

impl Cst {
    /// Reads the declared stabilization rounds from concrete components
    /// (statically dispatched; works for any component types).
    pub fn declared<CD, CM, L>(detector: &CD, manager: &CM, loss: &L) -> Self
    where
        CD: CollisionDetector,
        CM: ContentionManager,
        L: LossAdversary,
    {
        Cst {
            r_cf: loss.collision_free_from(),
            r_acc: detector.accuracy_from(),
            r_wake: manager.stabilized_from(),
        }
    }

    /// Reads the declared stabilization rounds from a boxed component
    /// bundle.
    pub fn from_components(components: &Components) -> Self {
        Cst::declared(&components.detector, &components.manager, &components.loss)
    }

    /// Reads the declared stabilization rounds from a running engine.
    pub fn from_engine<A, CD, CM, L, C>(engine: &Engine<A, CD, CM, L, C>) -> Self
    where
        A: wan_sim::Automaton,
        CD: CollisionDetector,
        CM: ContentionManager,
        L: LossAdversary,
        C: wan_sim::CrashAdversary,
    {
        Cst::declared(engine.detector(), engine.manager(), engine.loss())
    }

    /// `CST` itself: the maximum of the three rounds. `None` if any
    /// component declines to declare its stabilization (e.g. a backoff
    /// manager, whose `r_wake` must be measured from the trace instead).
    pub fn value(&self) -> Option<Round> {
        match (self.r_cf, self.r_acc, self.r_wake) {
            (Some(cf), Some(acc), Some(wake)) => Some(cf.max(acc).max(wake)),
            _ => None,
        }
    }

    /// `CST` with a measured `r_wake` substituted for a missing declaration.
    pub fn value_with_measured_wake(&self, measured: Option<Round>) -> Option<Round> {
        Cst {
            r_wake: self.r_wake.or(measured),
            ..*self
        }
        .value()
    }
}

impl fmt::Display for Cst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn opt(r: Option<Round>) -> String {
            r.map_or_else(|| "?".to_string(), |r| r.to_string())
        }
        write!(
            f,
            "CST{{r_cf={}, r_acc={}, r_wake={}}}",
            opt(self.r_cf),
            opt(self.r_acc),
            opt(self.r_wake)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_of_three() {
        let cst = Cst {
            r_cf: Some(Round(3)),
            r_acc: Some(Round(9)),
            r_wake: Some(Round(5)),
        };
        assert_eq!(cst.value(), Some(Round(9)));
    }

    #[test]
    fn missing_component_means_unknown() {
        let cst = Cst {
            r_cf: Some(Round(3)),
            r_acc: Some(Round(9)),
            r_wake: None,
        };
        assert_eq!(cst.value(), None);
        assert_eq!(
            cst.value_with_measured_wake(Some(Round(11))),
            Some(Round(11))
        );
        assert_eq!(cst.to_string(), "CST{r_cf=r3, r_acc=r9, r_wake=?}");
    }
}
