//! Consensus values and the binary encoding `V^{0,1}` of Section 7.

use std::fmt;

/// A consensus value: an element of some [`ValueDomain`]. Values are dense
/// integers `0 ≤ v < |V|`; the domain supplies the fixed-width binary
/// encoding that Algorithm 2 spells out bit by bit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Value(pub u64);

impl Value {
    /// The raw index of this value within its domain.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

/// A finite, totally ordered value set `V` with the binary representation
/// `V^{0,1}` used by Algorithm 2: each value is a bit string of length
/// `⌈lg |V|⌉` (at least 1), indexed MSB-first from 1 as in the paper's
/// `estimate[b]`.
///
/// # Examples
///
/// ```
/// use ccwan_core::{Value, ValueDomain};
///
/// let v = ValueDomain::new(6);     // V = {v0, …, v5}
/// assert_eq!(v.bits(), 3);         // ⌈lg 6⌉
/// // v5 = 101 in 3 bits, MSB first.
/// assert!(v.bit(Value(5), 1));
/// assert!(!v.bit(Value(5), 2));
/// assert!(v.bit(Value(5), 3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ValueDomain {
    size: u64,
}

impl ValueDomain {
    /// A domain of `size` values `{0, …, size−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` (consensus needs a non-empty value set) or if
    /// `size > 2^63` (the binary encoding must fit in `u64`).
    pub fn new(size: u64) -> Self {
        assert!(size >= 1, "a value domain must be non-empty");
        assert!(size <= 1 << 63, "value domain too large");
        ValueDomain { size }
    }

    /// A binary domain `{0, 1}` — commit/abort style decisions.
    pub fn binary() -> Self {
        ValueDomain::new(2)
    }

    /// `|V|`.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The encoding width `⌈lg |V|⌉`, with a minimum of 1 bit (the paper's
    /// `size ← ⌈lg |V|⌉` with the degenerate singleton domain still getting
    /// one propose round).
    pub fn bits(&self) -> u32 {
        if self.size <= 2 {
            1
        } else {
            64 - (self.size - 1).leading_zeros()
        }
    }

    /// Whether `v` is a member of the domain.
    pub fn contains(&self, v: Value) -> bool {
        v.0 < self.size
    }

    /// Bit `b` (1-indexed, MSB first) of `v`'s fixed-width encoding — the
    /// paper's `estimate[b]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the domain or `b` is not in `1..=bits()`.
    pub fn bit(&self, v: Value, b: u32) -> bool {
        assert!(self.contains(v), "{v} outside domain of size {}", self.size);
        assert!(
            (1..=self.bits()).contains(&b),
            "bit index {b} outside 1..={}",
            self.bits()
        );
        (v.0 >> (self.bits() - b)) & 1 == 1
    }

    /// All values in ascending order.
    pub fn values(&self) -> impl Iterator<Item = Value> {
        (0..self.size).map(Value)
    }

    /// The smallest value.
    pub fn min_value(&self) -> Value {
        Value(0)
    }

    /// The largest value.
    pub fn max_value(&self) -> Value {
        Value(self.size - 1)
    }
}

impl fmt::Display for ValueDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V[{}]", self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_widths() {
        assert_eq!(ValueDomain::new(1).bits(), 1);
        assert_eq!(ValueDomain::new(2).bits(), 1);
        assert_eq!(ValueDomain::new(3).bits(), 2);
        assert_eq!(ValueDomain::new(4).bits(), 2);
        assert_eq!(ValueDomain::new(5).bits(), 3);
        assert_eq!(ValueDomain::new(8).bits(), 3);
        assert_eq!(ValueDomain::new(9).bits(), 4);
        assert_eq!(ValueDomain::new(1 << 20).bits(), 20);
    }

    #[test]
    fn msb_first_indexing() {
        let d = ValueDomain::new(8); // 3 bits
                                     // v6 = 110
        assert!(d.bit(Value(6), 1));
        assert!(d.bit(Value(6), 2));
        assert!(!d.bit(Value(6), 3));
        // v1 = 001
        assert!(!d.bit(Value(1), 1));
        assert!(!d.bit(Value(1), 2));
        assert!(d.bit(Value(1), 3));
    }

    #[test]
    fn membership_and_extremes() {
        let d = ValueDomain::new(5);
        assert!(d.contains(Value(4)));
        assert!(!d.contains(Value(5)));
        assert_eq!(d.min_value(), Value(0));
        assert_eq!(d.max_value(), Value(4));
        assert_eq!(d.values().count(), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_rejected() {
        let _ = ValueDomain::new(0);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_bit_rejected() {
        let _ = ValueDomain::new(2).bit(Value(2), 1);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn out_of_range_bit_index_rejected() {
        let _ = ValueDomain::new(4).bit(Value(1), 3);
    }

    proptest! {
        /// The bit string read MSB-first reconstructs the value: the encoding
        /// is injective, which is all Algorithm 2 needs (distinct estimates
        /// differ at some propose round).
        #[test]
        fn encoding_roundtrip(size in 1u64..1000, raw in 0u64..1000) {
            let d = ValueDomain::new(size);
            let v = Value(raw % size);
            let mut acc = 0u64;
            for b in 1..=d.bits() {
                acc = (acc << 1) | u64::from(d.bit(v, b));
            }
            prop_assert_eq!(acc, v.0);
        }

        /// Width is always sufficient: every domain value fits in bits().
        #[test]
        fn width_sufficient(size in 1u64..100_000) {
            let d = ValueDomain::new(size);
            prop_assert!(u128::from(size) <= 1u128 << d.bits());
        }
    }
}
