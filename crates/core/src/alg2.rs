//! Algorithm 2 (Section 7.2): anonymous consensus with eventual collision
//! freedom and only a zero-complete, eventually-accurate collision detector
//! (`0-⋄AC` — the weakest class in Figure 1).
//!
//! Three phases repeat in a fixed cycle of `⌈lg |V|⌉ + 2` rounds:
//!
//! * **prepare** — contention-manager-active processes broadcast their
//!   estimate; clean receivers adopt the minimum;
//! * **propose** — one round per estimate bit: processes whose current bit
//!   is 1 broadcast a marker; a listener (bit 0) that hears anything — a
//!   message *or* a collision notification — learns that estimates
//!   disagree and sets its reject flag;
//! * **accept** — rejecting processes broadcast a veto; a process that
//!   hears neither message nor collision decides its estimate and halts
//!   (by the Noise Lemma, real silence is globally observable with a
//!   zero-complete detector).
//!
//! Theorem 2: terminates by `CST + 2(⌈lg |V|⌉ + 1)` — matching the Ω(log
//! |V|) lower bound of Theorem 6 for half-complete-or-weaker detectors.
//!
//! The phase state machine is exposed separately as [`Alg2Core`] because the
//! non-anonymous protocol of Section 7.3 reuses it verbatim to elect a
//! leader over the ID space (`crate::alg3`).

use crate::consensus::ConsensusAutomaton;
use crate::value::{Value, ValueDomain};
use std::collections::BTreeSet;
use wan_sim::{Automaton, CmAdvice, RoundInput};

/// Messages of Algorithm 2. The propose- and accept-phase broadcasts carry
/// no payload (the paper reuses the literal `"veto"`); only their presence
/// on the channel matters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Alg2Msg {
    /// A prepare-phase estimate broadcast.
    Estimate(Value),
    /// A propose-phase bit marker or accept-phase veto.
    Mark,
}

/// Where a process is within the `⌈lg |V|⌉ + 2`-round cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Alg2Phase {
    /// Estimate dissemination.
    Prepare,
    /// Bit-by-bit comparison; `bit` is 1-indexed MSB-first.
    Propose {
        /// The estimate bit being compared this round.
        bit: u32,
    },
    /// Silent-round decision.
    Accept,
}

/// What a process broadcasts in one Algorithm 2 round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Alg2Wire {
    /// The current estimate (prepare phase).
    Estimate(Value),
    /// A contentless marker (propose/accept phases).
    Mark,
}

/// The bare Algorithm 2 state machine, independent of message framing and of
/// *when* its rounds happen. [`ZeroEcfConsensus`] drives it every round; the
/// Section 7.3 protocol drives it only on its election rounds and resets it
/// across leader epochs.
#[derive(Debug, Clone)]
pub struct Alg2Core {
    domain: ValueDomain,
    estimate: Value,
    decide_flag: bool,
    /// Whether this process broadcasts in prepare rounds when advised
    /// active (the Section 7.3 participation gating; plain Algorithm 2
    /// always contends).
    contend: bool,
}

impl Alg2Core {
    /// A core with the given starting estimate.
    ///
    /// # Panics
    ///
    /// Panics if `estimate` is not in `domain`.
    pub fn new(domain: ValueDomain, estimate: Value) -> Self {
        assert!(domain.contains(estimate), "estimate outside domain");
        Alg2Core {
            domain,
            estimate,
            decide_flag: true,
            contend: true,
        }
    }

    /// Rounds per cycle: `⌈lg |V|⌉ + 2`.
    pub fn cycle_len(&self) -> u64 {
        u64::from(self.domain.bits()) + 2
    }

    /// The phase at cycle position `pos ∈ [0, cycle_len)`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn phase_at(&self, pos: u64) -> Alg2Phase {
        let bits = u64::from(self.domain.bits());
        match pos {
            0 => Alg2Phase::Prepare,
            p if p <= bits => Alg2Phase::Propose { bit: p as u32 },
            p if p == bits + 1 => Alg2Phase::Accept,
            p => panic!("cycle position {p} outside 0..{}", bits + 2),
        }
    }

    /// The message (if any) for cycle position `pos`, given whether the
    /// contention manager advised `active` this round.
    pub fn wire(&self, pos: u64, cm_active: bool) -> Option<Alg2Wire> {
        match self.phase_at(pos) {
            Alg2Phase::Prepare => {
                (self.contend && cm_active).then_some(Alg2Wire::Estimate(self.estimate))
            }
            Alg2Phase::Propose { bit } => self
                .domain
                .bit(self.estimate, bit)
                .then_some(Alg2Wire::Mark),
            Alg2Phase::Accept => (!self.decide_flag).then_some(Alg2Wire::Mark),
        }
    }

    /// Feeds one round's observations in; returns `Some(value)` when an
    /// accept round decides.
    ///
    /// * `estimates` — the `SET` of estimate values received (prepare
    ///   rounds; ignored otherwise);
    /// * `received_any` — whether *any* message was received (including the
    ///   process's own broadcast, per constraint 5);
    /// * `collision` — the collision detector advice.
    pub fn observe(
        &mut self,
        pos: u64,
        estimates: &BTreeSet<Value>,
        received_any: bool,
        collision: bool,
    ) -> Option<Value> {
        match self.phase_at(pos) {
            Alg2Phase::Prepare => {
                // Lines 11-12: adopt the minimum on a clean round.
                if !collision {
                    if let Some(&min) = estimates.iter().next() {
                        debug_assert!(self.domain.contains(min));
                        self.estimate = min;
                    }
                }
                // Line 13: optimistically plan to decide this cycle.
                self.decide_flag = true;
                None
            }
            Alg2Phase::Propose { bit } => {
                // Lines 21-22: a listening process that hears anything
                // rejects. (A broadcaster hears its own mark, but its bit is
                // 1, so the condition is vacuous for it.)
                if (received_any || collision) && !self.domain.bit(self.estimate, bit) {
                    self.decide_flag = false;
                }
                None
            }
            Alg2Phase::Accept => {
                // Lines 31-32: pure silence decides. A vetoing process hears
                // its own veto, so it never decides here.
                (!received_any && !collision).then_some(self.estimate)
            }
        }
    }

    /// The current estimate.
    pub fn estimate(&self) -> Value {
        self.estimate
    }

    /// The reject flag (`decide` in the paper's pseudocode).
    pub fn decide_flag(&self) -> bool {
        self.decide_flag
    }

    /// Sets whether this core broadcasts in prepare rounds (Section 7.3
    /// gating).
    pub fn set_contend(&mut self, contend: bool) {
        self.contend = contend;
    }

    /// Resets the core to a fresh instance with a new starting estimate
    /// (Section 7.3: "setting their estimate value back to their unique
    /// ID"). The reject flag is cleared pessimistically so a mid-cycle
    /// reset vetoes out the current cycle instead of corrupting it.
    pub fn reset(&mut self, estimate: Value) {
        assert!(self.domain.contains(estimate), "estimate outside domain");
        self.estimate = estimate;
        self.decide_flag = false;
    }

    /// The value domain this core runs over.
    pub fn domain(&self) -> ValueDomain {
        self.domain
    }
}

/// One process of Algorithm 2 — the paper's `(E(0-⋄AC, WS), V, ECF)`-
/// consensus algorithm. Anonymous.
#[derive(Debug, Clone)]
pub struct ZeroEcfConsensus {
    core: Alg2Core,
    initial: Value,
    decided: Option<Value>,
    halted: bool,
    rounds_done: u64,
}

impl ZeroEcfConsensus {
    /// A process with the given initial value.
    pub fn new(domain: ValueDomain, initial: Value) -> Self {
        ZeroEcfConsensus {
            core: Alg2Core::new(domain, initial),
            initial,
            decided: None,
            halted: false,
            rounds_done: 0,
        }
    }

    /// The current estimate.
    pub fn estimate(&self) -> Value {
        self.core.estimate()
    }

    fn pos(&self) -> u64 {
        self.rounds_done % self.core.cycle_len()
    }
}

impl Automaton for ZeroEcfConsensus {
    type Msg = Alg2Msg;

    fn message(&self, cm: CmAdvice) -> Option<Alg2Msg> {
        if self.halted {
            return None;
        }
        self.core.wire(self.pos(), cm.is_active()).map(|w| match w {
            Alg2Wire::Estimate(v) => Alg2Msg::Estimate(v),
            Alg2Wire::Mark => Alg2Msg::Mark,
        })
    }

    fn transition(&mut self, input: RoundInput<'_, Alg2Msg>) {
        let pos = self.pos();
        self.rounds_done += 1;
        if self.halted {
            return;
        }
        let estimates: BTreeSet<Value> = input
            .received
            .support()
            .filter_map(|m| match m {
                Alg2Msg::Estimate(v) => Some(*v),
                Alg2Msg::Mark => None,
            })
            .collect();
        if let Some(v) = self.core.observe(
            pos,
            &estimates,
            !input.received.is_empty(),
            input.cd.is_collision(),
        ) {
            self.decided = Some(v);
            self.halted = true;
        }
    }

    fn is_contending(&self) -> bool {
        !self.halted
    }
}

impl ConsensusAutomaton for ZeroEcfConsensus {
    fn initial_value(&self) -> Value {
        self.initial
    }

    fn decision(&self) -> Option<Value> {
        self.decided
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

/// Builds the full anonymous process vector for a run.
pub fn processes(domain: ValueDomain, initial_values: &[Value]) -> Vec<ZeroEcfConsensus> {
    initial_values
        .iter()
        .map(|&v| ZeroEcfConsensus::new(domain, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ConsensusRun;
    use wan_cd::{CdClass, CheckedDetector, ClassDetector, FreedomPolicy};
    use wan_cm::FairWakeUp;
    use wan_sim::crash::NoCrashes;
    use wan_sim::loss::{Ecf, RandomLoss};
    use wan_sim::{Components, Round};

    fn clean_components(policy: FreedomPolicy, seed: u64) -> Components {
        Components {
            detector: Box::new(
                CheckedDetector::new(
                    ClassDetector::new(CdClass::ZERO_EV_AC, policy, seed),
                    CdClass::ZERO_EV_AC,
                )
                .strict(),
            ),
            manager: Box::new(FairWakeUp::immediate()),
            loss: Box::new(Ecf::new(RandomLoss::new(0.0, seed), Round(1))),
            crash: Box::new(NoCrashes),
        }
    }

    #[test]
    fn decides_within_theorem_2_bound() {
        let domain = ValueDomain::new(16); // bits = 4, cycle = 6
        let values: Vec<Value> = [9, 3, 14, 3].into_iter().map(Value).collect();
        let procs = processes(domain, &values);
        let mut run = ConsensusRun::new(procs, clean_components(FreedomPolicy::Quiet, 0));
        let outcome = run.run_to_completion(Round(100));
        assert!(outcome.terminated);
        assert!(outcome.is_safe());
        // CST = 1; Theorem 2: by CST + 2(⌈lg|V|⌉ + 1) = 1 + 10.
        assert!(
            outcome.last_decision().unwrap() <= Round(11),
            "decided at {:?}",
            outcome.last_decision()
        );
    }

    #[test]
    fn uniform_inputs_decide_that_value() {
        let domain = ValueDomain::new(8);
        let values = vec![Value(5); 3];
        let procs = processes(domain, &values);
        let mut run = ConsensusRun::new(procs, clean_components(FreedomPolicy::Quiet, 1));
        let outcome = run.run_to_completion(Round(100));
        assert_eq!(outcome.agreed_value(), Some(Value(5)));
    }

    #[test]
    fn singleton_domain_still_works() {
        let domain = ValueDomain::new(1);
        let procs = processes(domain, &[Value(0), Value(0)]);
        let mut run = ConsensusRun::new(procs, clean_components(FreedomPolicy::Quiet, 2));
        let outcome = run.run_to_completion(Round(50));
        assert_eq!(outcome.agreed_value(), Some(Value(0)));
    }

    #[test]
    fn core_phase_schedule() {
        let core = Alg2Core::new(ValueDomain::new(8), Value(0)); // bits=3
        assert_eq!(core.cycle_len(), 5);
        assert_eq!(core.phase_at(0), Alg2Phase::Prepare);
        assert_eq!(core.phase_at(1), Alg2Phase::Propose { bit: 1 });
        assert_eq!(core.phase_at(3), Alg2Phase::Propose { bit: 3 });
        assert_eq!(core.phase_at(4), Alg2Phase::Accept);
    }

    #[test]
    #[should_panic(expected = "cycle position")]
    fn out_of_cycle_position_panics() {
        let core = Alg2Core::new(ValueDomain::new(8), Value(0));
        let _ = core.phase_at(5);
    }

    #[test]
    fn core_bit_broadcast_matches_encoding() {
        // estimate v5 = 101 over 3 bits.
        let core = Alg2Core::new(ValueDomain::new(8), Value(5));
        assert_eq!(core.wire(1, false), Some(Alg2Wire::Mark)); // bit 1 = 1
        assert_eq!(core.wire(2, false), None); // bit 2 = 0
        assert_eq!(core.wire(3, false), Some(Alg2Wire::Mark)); // bit 3 = 1
    }

    #[test]
    fn listener_hearing_mark_rejects_and_vetoes() {
        let mut core = Alg2Core::new(ValueDomain::new(8), Value(0)); // bits all 0
        assert!(core.decide_flag());
        // Propose round for bit 1: hears something while listening.
        core.observe(1, &BTreeSet::new(), true, false);
        assert!(!core.decide_flag());
        // It now vetoes in accept.
        assert_eq!(core.wire(4, false), Some(Alg2Wire::Mark));
        // And hearing its own veto, it does not decide.
        assert_eq!(core.observe(4, &BTreeSet::new(), true, false), None);
    }

    #[test]
    fn collision_notification_also_rejects() {
        let mut core = Alg2Core::new(ValueDomain::new(8), Value(0));
        core.observe(2, &BTreeSet::new(), false, true);
        assert!(!core.decide_flag());
    }

    #[test]
    fn reset_clears_flag_pessimistically() {
        let mut core = Alg2Core::new(ValueDomain::new(8), Value(3));
        core.reset(Value(6));
        assert_eq!(core.estimate(), Value(6));
        assert!(!core.decide_flag());
    }
}
