//! The non-anonymous protocol of Section 7.3: consensus in
//! `CST + Θ(min{lg |V|, lg |I|})` rounds with a `0-⋄AC` detector and a
//! wake-up service, under eventual collision freedom.
//!
//! The paper describes this protocol *informally* and explicitly provides
//! "no formal pseudo-code or rigorous correctness proof". The sketch:
//! if `|V| ≤ |I|`, run Algorithm 2 on values directly; otherwise run
//! Algorithm 2 on the (smaller) ID space to elect a leader, have the leader
//! broadcast its value, and use negative-acknowledgement vetoes plus
//! leader-failure detection to survive crashes.
//!
//! # Corrections (see DESIGN.md, "Known subtleties")
//!
//! The informal sketch has unsafe corners (e.g. a leader crashing after one
//! process received its value but before the rest can lead a later leader
//! to disseminate a different value). This implementation hardens it:
//!
//! * **Epoch-tagged dissemination.** Leader generations are numbered.
//!   A process vetoes while it lacks a value of its current epoch, and
//!   decides only in a *silent* veto round when it both holds a
//!   current-epoch value **and** heard a fresh leader heartbeat in the
//!   immediately preceding value round. The heartbeat requirement is what
//!   excludes split decisions across epochs: a value round is silent to
//!   everyone once its leader is gone (the Noise Lemma makes silence
//!   global), so stale-epoch holders can never decide after their leader
//!   died.
//! * **Value carry-over.** A newly elected leader disseminates the highest-
//!   epoch value it has ever heard (falling back to its own initial value).
//!   Since any *decision* required a globally silent veto round, at that
//!   moment every live process held the decided value — so every possible
//!   future leader carries it, and agreement is preserved across leader
//!   crashes.
//! * **Election freezing.** Once a process learns the epoch's winner it
//!   freezes its election state (stops adopting estimates, keeps
//!   broadcasting its frozen bit pattern). The frozen bit pattern jams any
//!   divergent late election — a second winner within an epoch is
//!   impossible while a frozen process lives, and if the leader dies the
//!   epoch advances and elections restart cleanly. This implements the
//!   paper's "processes do not broadcast in the prepare phase unless they
//!   detect the current leader to be failed" gating.
//! * **Sound failure detection.** The leader-death test is a truly silent
//!   value round (nothing received, no collision advice). Zero
//!   completeness makes that definitive: if the leader had broadcast,
//!   every process would have received something or a `±`.
//! * **Epoch synchronization rounds.** Every fourth round, the
//!   contention-manager-active process (plus an occasional random helper;
//!   the paper itself embraces probabilistic liveness for contention
//!   management) broadcasts its `{epoch, winner, value}` status, pulling
//!   stragglers forward. Safety never depends on these; only liveness in
//!   exotic mixed-epoch schedules does. Remaining liveness corner: if the
//!   wake-up service stabilizes on a process that missed an election whose
//!   leader then died, progress relies on a probabilistically-solo sync
//!   round (an adversary controlling all multi-broadcaster deliveries can
//!   delay it arbitrarily, but not forever with probability 1).
//!
//! The round structure is four interleaved slots — `elect`, `value`,
//! `veto`, `sync` — so the election advances every fourth round and the
//! asymptotic `CST + Θ(min{lg |V|, lg |I|})` bound is preserved (with a 4×
//! constant; experiment E4 measures the min{} crossover).

use crate::alg2::{Alg2Core, Alg2Wire};
use crate::consensus::ConsensusAutomaton;
use crate::uid::{IdSpace, Uid};
use crate::value::{Value, ValueDomain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use wan_sim::{Automaton, CdAdvice, CmAdvice, RoundInput};

/// Probability that a non-CM-active process volunteers a sync broadcast.
const SYNC_VOLUNTEER_P: f64 = 0.125;

/// Payload of an election-round broadcast.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ElectWire {
    /// A prepare-phase estimate (an ID, encoded as a domain value; or a
    /// plain value in direct mode).
    Estimate(Value),
    /// A propose-phase bit marker or accept-phase veto.
    Mark,
}

/// Messages of the Section 7.3 protocol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Alg3Msg {
    /// Election traffic (slot 0), tagged with the sender's epoch.
    Elect {
        /// Sender's leader epoch.
        epoch: u32,
        /// Election payload.
        wire: ElectWire,
    },
    /// A leader heartbeat carrying the consensus value (slot 1).
    ValueMsg {
        /// The leader's epoch.
        epoch: u32,
        /// The disseminated value.
        value: Value,
    },
    /// A negative acknowledgement: "I lack a current-epoch value" (slot 2).
    Veto,
    /// An epoch synchronization broadcast (slot 3).
    Sync {
        /// Sender's epoch.
        epoch: u32,
        /// The winner the sender knows for that epoch, if any.
        elected: Option<Uid>,
        /// The sender's best value and its epoch.
        val: Option<(Value, u32)>,
    },
}

/// The four round slots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Slot {
    Elect,
    Value,
    Veto,
    Sync,
}

/// One process of the (corrected) Section 7.3 protocol. Non-anonymous: each
/// process knows its own [`Uid`], and nothing else about membership.
#[derive(Debug, Clone)]
pub struct NonAnonConsensus {
    ids: IdSpace,
    domain: ValueDomain,
    my_id: Uid,
    initial: Value,
    /// `|V| ≤ |I|`: run the election machinery directly over values and
    /// decide its outcome.
    direct: bool,
    epoch: u32,
    core: Alg2Core,
    elected: Option<Uid>,
    /// Best value heard, with the epoch of the heartbeat that carried it.
    val: Option<(Value, u32)>,
    /// Whether the last value round delivered a current-epoch heartbeat.
    fresh_heartbeat: bool,
    /// Pre-drawn decision to volunteer a sync broadcast next sync round.
    volunteer_sync: bool,
    decided: Option<Value>,
    halted: bool,
    rounds_done: u64,
    elect_rounds_done: u64,
    rng: StdRng,
}

impl NonAnonConsensus {
    /// A process with identifier `my_id` and initial value `initial`.
    /// The `seed` drives only the probabilistic sync volunteering.
    ///
    /// # Panics
    ///
    /// Panics if `my_id` is outside `ids` or `initial` outside `domain`.
    pub fn new(ids: IdSpace, domain: ValueDomain, my_id: Uid, initial: Value, seed: u64) -> Self {
        assert!(ids.contains(my_id), "{my_id} outside {ids}");
        assert!(domain.contains(initial), "initial value outside domain");
        let direct = domain.size() <= ids.size();
        let core = if direct {
            Alg2Core::new(domain, initial)
        } else {
            Alg2Core::new(ids.as_domain(), Value(my_id.0))
        };
        NonAnonConsensus {
            ids,
            domain,
            my_id,
            initial,
            direct,
            epoch: 1,
            core,
            elected: None,
            val: None,
            fresh_heartbeat: false,
            volunteer_sync: false,
            decided: None,
            halted: false,
            rounds_done: 0,
            elect_rounds_done: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Whether this process runs Algorithm 2 directly over values
    /// (`|V| ≤ |I|`).
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    /// The current leader epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The winner this process knows for its current epoch.
    pub fn elected(&self) -> Option<Uid> {
        self.elected
    }

    /// This process's identifier.
    pub fn uid(&self) -> Uid {
        self.my_id
    }

    /// The identifier space `I`.
    pub fn id_space(&self) -> IdSpace {
        self.ids
    }

    /// The value domain `V`.
    pub fn domain(&self) -> ValueDomain {
        self.domain
    }

    fn slot(&self) -> Slot {
        match self.rounds_done % 4 {
            0 => Slot::Elect,
            1 => Slot::Value,
            2 => Slot::Veto,
            _ => Slot::Sync,
        }
    }

    fn elect_pos(&self) -> u64 {
        self.elect_rounds_done % self.core.cycle_len()
    }

    fn own_election_start(&self) -> Value {
        if self.direct {
            self.initial
        } else {
            Value(self.my_id.0)
        }
    }

    fn has_current_val(&self) -> bool {
        self.val.is_some_and(|(_, e)| e == self.epoch)
    }

    /// The value a leader disseminates: its best-known value, else its own
    /// initial value (safe: if anyone ever decided, every live process —
    /// including every possible leader — already holds the decided value).
    fn dissemination_value(&self) -> Value {
        self.val.map(|(v, _)| v).unwrap_or(self.initial)
    }

    fn advance_epoch(&mut self, to: u32) {
        debug_assert!(to > self.epoch);
        self.epoch = to;
        self.elected = None;
        self.core.reset(self.own_election_start());
        self.core.set_contend(true);
        self.fresh_heartbeat = false;
    }

    fn set_winner(&mut self, winner: Uid) {
        self.elected = Some(winner);
        // Freeze the election: stop contending and stop adapting; the
        // frozen bit pattern jams divergent late elections.
        self.core.set_contend(false);
    }

    fn adopt_val(&mut self, value: Value, epoch: u32) {
        let newer = match self.val {
            None => true,
            Some((_, e)) => epoch >= e,
        };
        if newer {
            self.val = Some((value, epoch));
        }
    }
}

impl Automaton for NonAnonConsensus {
    type Msg = Alg3Msg;

    fn message(&self, cm: CmAdvice) -> Option<Alg3Msg> {
        if self.halted {
            return None;
        }
        match self.slot() {
            Slot::Elect => {
                // Frozen processes keep their wire: marks jam divergent
                // elections (contend=false already suppresses prepare).
                self.core
                    .wire(self.elect_pos(), cm.is_active())
                    .map(|w| Alg3Msg::Elect {
                        epoch: self.epoch,
                        wire: match w {
                            Alg2Wire::Estimate(v) => ElectWire::Estimate(v),
                            Alg2Wire::Mark => ElectWire::Mark,
                        },
                    })
            }
            Slot::Value => {
                (!self.direct && self.elected == Some(self.my_id)).then(|| Alg3Msg::ValueMsg {
                    epoch: self.epoch,
                    value: self.dissemination_value(),
                })
            }
            Slot::Veto => (!self.direct && !self.has_current_val()).then_some(Alg3Msg::Veto),
            Slot::Sync => {
                if self.direct {
                    return None;
                }
                (cm.is_active() || self.volunteer_sync).then_some(Alg3Msg::Sync {
                    epoch: self.epoch,
                    elected: self.elected,
                    val: self.val,
                })
            }
        }
    }

    fn transition(&mut self, input: RoundInput<'_, Alg3Msg>) {
        let slot = self.slot();
        self.rounds_done += 1;
        if slot == Slot::Elect {
            // The global election schedule advances whether or not this
            // process is frozen or halted, keeping all copies aligned.
            self.elect_rounds_done += 1;
        }
        if self.halted {
            return;
        }
        match slot {
            Slot::Elect => {
                // Fast-forward on higher-epoch election traffic.
                let max_epoch = input
                    .received
                    .support()
                    .filter_map(|m| match m {
                        Alg3Msg::Elect { epoch, .. } => Some(*epoch),
                        _ => None,
                    })
                    .max();
                if let Some(e) = max_epoch {
                    if e > self.epoch {
                        self.advance_epoch(e);
                    }
                }
                // Frozen (winner-known) processes skip observation; the
                // election is over for them until the epoch advances.
                if self.elected.is_some() {
                    return;
                }
                let estimates: BTreeSet<Value> = input
                    .received
                    .support()
                    .filter_map(|m| match m {
                        Alg3Msg::Elect {
                            epoch,
                            wire: ElectWire::Estimate(v),
                        } if *epoch == self.epoch => Some(*v),
                        _ => None,
                    })
                    .collect();
                // Note `elect_rounds_done` was already incremented; the
                // position this round ran at is the previous one.
                let pos = (self.elect_rounds_done - 1) % self.core.cycle_len();
                let outcome = self.core.observe(
                    pos,
                    &estimates,
                    !input.received.is_empty(),
                    input.cd.is_collision(),
                );
                if let Some(winner) = outcome {
                    if self.direct {
                        self.decided = Some(winner);
                        self.halted = true;
                    } else {
                        self.set_winner(Uid(winner.0));
                    }
                }
            }
            Slot::Value => {
                if self.direct {
                    return;
                }
                self.fresh_heartbeat = false;
                // Adopt the best heartbeat; advance epoch if it is ahead.
                let best = input
                    .received
                    .support()
                    .filter_map(|m| match m {
                        Alg3Msg::ValueMsg { epoch, value } => Some((*epoch, *value)),
                        _ => None,
                    })
                    .max_by_key(|&(e, v)| (e, std::cmp::Reverse(v)));
                if let Some((e, v)) = best {
                    if e > self.epoch {
                        self.advance_epoch(e);
                    }
                    if e >= self.epoch {
                        self.adopt_val(v, e);
                        self.fresh_heartbeat = e == self.epoch;
                    }
                }
                // Sound leader-death detection: a truly silent value round
                // while a leader is known. Zero completeness makes silence
                // definitive; the leader itself hears its own heartbeat.
                if self.elected.is_some() && input.received.is_empty() && input.cd == CdAdvice::Null
                {
                    self.advance_epoch(self.epoch + 1);
                }
            }
            Slot::Veto => {
                if self.direct {
                    return;
                }
                // Decide on: current-epoch value + fresh heartbeat +
                // globally silent veto round. (A vetoing process hears its
                // own veto, so it never passes.)
                if self.has_current_val()
                    && self.fresh_heartbeat
                    && input.received.is_empty()
                    && input.cd == CdAdvice::Null
                {
                    self.decided = Some(self.val.expect("has_current_val").0);
                    self.halted = true;
                }
                // Pre-draw the sync volunteering coin for the next slot.
                self.volunteer_sync = self.rng.random_bool(SYNC_VOLUNTEER_P);
            }
            Slot::Sync => {
                if self.direct {
                    return;
                }
                let best = input
                    .received
                    .support()
                    .filter_map(|m| match m {
                        Alg3Msg::Sync {
                            epoch,
                            elected,
                            val,
                        } => Some((*epoch, *elected, *val)),
                        _ => None,
                    })
                    .max_by_key(|&(e, el, _)| (e, el.is_some()));
                if let Some((e, el, v)) = best {
                    if e > self.epoch {
                        self.advance_epoch(e);
                        if let Some(winner) = el {
                            self.set_winner(winner);
                            self.core.reset(Value(winner.0));
                            self.core.set_contend(false);
                        }
                    } else if e == self.epoch && self.elected.is_none() {
                        if let Some(winner) = el {
                            self.set_winner(winner);
                            self.core.reset(Value(winner.0));
                            self.core.set_contend(false);
                        }
                    }
                    if let Some((value, ve)) = v {
                        if ve >= self.val.map_or(0, |(_, e0)| e0) && ve <= self.epoch {
                            self.adopt_val(value, ve);
                        }
                    }
                }
            }
        }
    }

    fn is_contending(&self) -> bool {
        !self.halted
    }
}

impl ConsensusAutomaton for NonAnonConsensus {
    fn initial_value(&self) -> Value {
        self.initial
    }

    fn decision(&self) -> Option<Value> {
        self.decided
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

/// Builds the process vector: `assignments[i] = (uid, initial value)` for
/// simulation index `i`. UIDs must be distinct.
///
/// # Panics
///
/// Panics if two processes share a UID.
pub fn processes(
    ids: IdSpace,
    domain: ValueDomain,
    assignments: &[(Uid, Value)],
    seed: u64,
) -> Vec<NonAnonConsensus> {
    let distinct: BTreeSet<Uid> = assignments.iter().map(|&(u, _)| u).collect();
    assert_eq!(
        distinct.len(),
        assignments.len(),
        "process identifiers must be unique"
    );
    assignments
        .iter()
        .enumerate()
        .map(|(i, &(uid, v))| NonAnonConsensus::new(ids, domain, uid, v, seed ^ (i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ConsensusRun;
    use wan_cd::{CdClass, CheckedDetector, ClassDetector, FreedomPolicy};
    use wan_cm::FairWakeUp;
    use wan_sim::crash::{NoCrashes, ScheduledCrashes};
    use wan_sim::loss::{Ecf, RandomLoss};
    use wan_sim::{Components, CrashAdversary, ProcessId, Round};

    fn components(seed: u64, crash: Box<dyn CrashAdversary>) -> Components {
        Components {
            detector: Box::new(
                CheckedDetector::new(
                    ClassDetector::new(CdClass::ZERO_EV_AC, FreedomPolicy::Quiet, seed),
                    CdClass::ZERO_EV_AC,
                )
                .strict(),
            ),
            manager: Box::new(FairWakeUp::immediate()),
            loss: Box::new(Ecf::new(RandomLoss::new(0.0, seed), Round(1))),
            crash,
        }
    }

    #[test]
    fn direct_mode_when_values_fit_in_ids() {
        let ids = IdSpace::new(256);
        let domain = ValueDomain::new(8);
        let procs = processes(
            ids,
            domain,
            &[(Uid(10), Value(5)), (Uid(77), Value(2)), (Uid(3), Value(7))],
            0,
        );
        assert!(procs.iter().all(|p| p.is_direct()));
        let mut run = ConsensusRun::new(procs, components(0, Box::new(NoCrashes)));
        let outcome = run.run_to_completion(Round(400));
        assert!(outcome.terminated);
        assert!(outcome.is_safe());
    }

    #[test]
    fn elect_mode_when_ids_smaller_than_values() {
        let ids = IdSpace::new(4);
        let domain = ValueDomain::new(1 << 20);
        let procs = processes(
            ids,
            domain,
            &[
                (Uid(2), Value(999_999)),
                (Uid(0), Value(123_456)),
                (Uid(3), Value(7)),
            ],
            1,
        );
        assert!(procs.iter().all(|p| !p.is_direct()));
        let mut run = ConsensusRun::new(procs, components(1, Box::new(NoCrashes)));
        let outcome = run.run_to_completion(Round(600));
        assert!(outcome.terminated, "undecided after 600 rounds");
        assert!(outcome.is_safe());
        // The decision is the elected leader's initial value.
        let decided = outcome.agreed_value().unwrap();
        assert!(outcome.initial_values.contains(&decided));
    }

    #[test]
    fn leader_crash_before_dissemination_is_survived() {
        let ids = IdSpace::new(4);
        let domain = ValueDomain::new(1 << 16);
        let procs = processes(
            ids,
            domain,
            &[
                (Uid(0), Value(11)),
                (Uid(1), Value(22)),
                (Uid(2), Value(33)),
            ],
            2,
        );
        // Uid(0) at index 0 wins the first election (min id with the fair
        // wake-up). Crash it immediately after election could complete but
        // likely before everyone decided: round 40 is mid-protocol.
        let crash = ScheduledCrashes::new().crash(ProcessId(0), Round(40));
        let mut run = ConsensusRun::new(procs, components(2, Box::new(crash)));
        let outcome = run.run_to_completion(Round(2000));
        assert!(outcome.terminated, "survivors undecided after 2000 rounds");
        assert!(outcome.is_safe());
    }

    #[test]
    fn leader_crash_storm_is_survived() {
        let ids = IdSpace::new(8);
        let domain = ValueDomain::new(1 << 16);
        let assignments: Vec<(Uid, Value)> = (0..6).map(|i| (Uid(i), Value(1000 + i))).collect();
        let procs = processes(ids, domain, &assignments, 3);
        // Crash the first three indices in waves.
        let crash = ScheduledCrashes::new()
            .crash(ProcessId(0), Round(30))
            .crash(ProcessId(1), Round(70))
            .crash(ProcessId(2), Round(110));
        let mut run = ConsensusRun::new(procs, components(3, Box::new(crash)));
        let outcome = run.run_to_completion(Round(4000));
        assert!(outcome.terminated, "survivors undecided after 4000 rounds");
        assert!(outcome.is_safe());
    }

    #[test]
    fn noisy_detector_and_lossy_prefix_stay_safe() {
        let ids = IdSpace::new(4);
        let domain = ValueDomain::new(1 << 10);
        for seed in 0..10u64 {
            let procs = processes(
                ids,
                domain,
                &[
                    (Uid(1), Value(500)),
                    (Uid(2), Value(600)),
                    (Uid(3), Value(700)),
                ],
                seed,
            );
            let comps = Components {
                detector: Box::new(
                    CheckedDetector::new(
                        ClassDetector::new(
                            CdClass::ZERO_EV_AC,
                            FreedomPolicy::Random { p: 0.3 },
                            seed,
                        )
                        .accurate_from(Round(40)),
                        CdClass::ZERO_EV_AC,
                    )
                    .strict(),
                ),
                manager: Box::new(FairWakeUp::immediate()),
                loss: Box::new(Ecf::new(RandomLoss::new(0.5, seed), Round(40))),
                crash: Box::new(NoCrashes),
            };
            let mut run = ConsensusRun::new(procs, comps);
            let outcome = run.run_to_completion(Round(3000));
            assert!(
                outcome.is_safe(),
                "seed {seed}: {:?}",
                outcome.safety_violations()
            );
            assert!(outcome.terminated, "seed {seed} undecided");
        }
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_uids_rejected() {
        let ids = IdSpace::new(4);
        let domain = ValueDomain::new(4);
        let _ = processes(ids, domain, &[(Uid(1), Value(0)), (Uid(1), Value(1))], 0);
    }

    // ---- state-machine-level tests of the epoch machinery ----
    // These drive a single automaton with crafted RoundInputs, checking the
    // corrected protocol's rules directly.

    mod epoch_machine {
        use super::super::*;
        use wan_sim::{Multiset, Round};

        fn elect_proc() -> NonAnonConsensus {
            // |V| > |I| forces elect mode.
            NonAnonConsensus::new(
                IdSpace::new(8),
                ValueDomain::new(1 << 10),
                Uid(5),
                Value(700),
                0,
            )
        }

        fn feed(p: &mut NonAnonConsensus, round: u64, msgs: &[Alg3Msg], cd: CdAdvice) {
            let received: Multiset<Alg3Msg> = msgs.iter().copied().collect();
            p.transition(RoundInput {
                round: Round(round),
                received: &received,
                cd,
                cm: CmAdvice::Passive,
            });
        }

        #[test]
        fn fast_forward_on_higher_epoch_elect_traffic() {
            let mut p = elect_proc();
            assert_eq!(p.epoch(), 1);
            // Round 1 is an ELECT round; a higher-epoch estimate arrives.
            feed(
                &mut p,
                1,
                &[Alg3Msg::Elect {
                    epoch: 4,
                    wire: ElectWire::Estimate(Value(2)),
                }],
                CdAdvice::Null,
            );
            assert_eq!(p.epoch(), 4, "must fast-forward to the sender's epoch");
            assert_eq!(p.elected(), None, "fast-forward resets the election");
        }

        #[test]
        fn value_round_heartbeat_and_adoption() {
            let mut p = elect_proc();
            feed(&mut p, 1, &[], CdAdvice::Null); // ELECT: silence
                                                  // VALUE round: a current-epoch heartbeat.
            feed(
                &mut p,
                2,
                &[Alg3Msg::ValueMsg {
                    epoch: 1,
                    value: Value(123),
                }],
                CdAdvice::Null,
            );
            // VETO round with global silence: decide.
            feed(&mut p, 3, &[], CdAdvice::Null);
            assert_eq!(p.decision(), Some(Value(123)));
            assert!(p.halted());
        }

        #[test]
        fn stale_heartbeat_neither_adopts_nor_decides() {
            let mut p = elect_proc();
            // Jump the process to epoch 3 first.
            feed(
                &mut p,
                1,
                &[Alg3Msg::Elect {
                    epoch: 3,
                    wire: ElectWire::Mark,
                }],
                CdAdvice::Null,
            );
            assert_eq!(p.epoch(), 3);
            // A stale epoch-1 value arrives in the VALUE round.
            feed(
                &mut p,
                2,
                &[Alg3Msg::ValueMsg {
                    epoch: 1,
                    value: Value(123),
                }],
                CdAdvice::Null,
            );
            // Silent veto round: must NOT decide (no current-epoch value).
            feed(&mut p, 3, &[], CdAdvice::Null);
            assert_eq!(p.decision(), None);
            // And it must be vetoing.
            assert_eq!(p.message(CmAdvice::Passive), None); // round 4 = SYNC, passive
        }

        #[test]
        fn silent_value_round_without_leader_is_not_death() {
            let mut p = elect_proc();
            assert_eq!(p.elected(), None);
            feed(&mut p, 1, &[], CdAdvice::Null); // ELECT
            feed(&mut p, 2, &[], CdAdvice::Null); // VALUE: silence, no leader known
            assert_eq!(p.epoch(), 1, "no leader known, no death to detect");
        }

        #[test]
        fn collision_advice_blocks_death_detection() {
            let mut p = elect_proc();
            // Adopt a leader via sync.
            feed(&mut p, 1, &[], CdAdvice::Null); // ELECT
            feed(&mut p, 2, &[], CdAdvice::Null); // VALUE (silent, но elected=None)
            feed(&mut p, 3, &[], CdAdvice::Null); // VETO
            feed(
                &mut p,
                4,
                &[Alg3Msg::Sync {
                    epoch: 1,
                    elected: Some(Uid(2)),
                    val: None,
                }],
                CdAdvice::Null,
            ); // SYNC: learn the winner
            assert_eq!(p.elected(), Some(Uid(2)));
            feed(&mut p, 5, &[], CdAdvice::Null); // ELECT
                                                  // VALUE round: nothing received but a collision notification —
                                                  // the leader may have broadcast and been lost. NOT death.
            feed(&mut p, 6, &[], CdAdvice::Collision);
            assert_eq!(p.epoch(), 1, "± is not evidence of death");
            // VALUE round with true silence: death.
            feed(&mut p, 7, &[], CdAdvice::Null); // VETO (no-op here)
            feed(&mut p, 8, &[], CdAdvice::Null); // SYNC
            feed(&mut p, 9, &[], CdAdvice::Null); // ELECT
            feed(&mut p, 10, &[], CdAdvice::Null); // VALUE: silence => death
            assert_eq!(p.epoch(), 2, "definitive silence advances the epoch");
            assert_eq!(p.elected(), None);
        }

        #[test]
        fn sync_adoption_of_winner_and_value() {
            let mut p = elect_proc();
            feed(&mut p, 1, &[], CdAdvice::Null);
            feed(&mut p, 2, &[], CdAdvice::Null);
            feed(&mut p, 3, &[], CdAdvice::Null);
            feed(
                &mut p,
                4,
                &[Alg3Msg::Sync {
                    epoch: 2,
                    elected: Some(Uid(7)),
                    val: Some((Value(55), 2)),
                }],
                CdAdvice::Null,
            );
            assert_eq!(p.epoch(), 2);
            assert_eq!(p.elected(), Some(Uid(7)));
            // Next VALUE round heartbeat at epoch 2, then silent veto:
            feed(&mut p, 5, &[], CdAdvice::Null); // ELECT
            feed(
                &mut p,
                6,
                &[Alg3Msg::ValueMsg {
                    epoch: 2,
                    value: Value(55),
                }],
                CdAdvice::Null,
            );
            feed(&mut p, 7, &[], CdAdvice::Null); // VETO: silent => decide
            assert_eq!(p.decision(), Some(Value(55)));
        }

        #[test]
        fn leader_self_election_broadcasts_its_value() {
            // A lone process (n = 1 view): elects itself and disseminates.
            let ids = IdSpace::new(4);
            let domain = ValueDomain::new(1 << 8);
            let mut p = NonAnonConsensus::new(ids, domain, Uid(2), Value(99), 1);
            // Drive ELECT rounds with its own (solo) traffic echoed back:
            // prepare (pos 0): CM-active => broadcasts estimate.
            let m = p.message(CmAdvice::Active).expect("prepare broadcast");
            assert!(matches!(
                m,
                Alg3Msg::Elect {
                    epoch: 1,
                    wire: ElectWire::Estimate(Value(2))
                }
            ));
            // Feed its own message back (constraint 5) through the whole
            // election cycle: bits of id 2 (10 over 2 bits), accept.
            let cycle = u64::from(ids.bits()) + 2;
            let mut round = 1u64;
            for pos in 0..cycle {
                let msg = p.message(CmAdvice::Active);
                let msgs: Vec<Alg3Msg> = msg.into_iter().collect();
                feed(&mut p, round, &msgs, CdAdvice::Null);
                round += 1; // VALUE
                let vmsgs: Vec<Alg3Msg> = p.message(CmAdvice::Passive).into_iter().collect();
                feed(&mut p, round, &vmsgs, CdAdvice::Null);
                round += 1; // VETO
                let vetos: Vec<Alg3Msg> = p.message(CmAdvice::Passive).into_iter().collect();
                feed(&mut p, round, &vetos, CdAdvice::Null);
                round += 1; // SYNC
                feed(&mut p, round, &[], CdAdvice::Null);
                round += 1;
                let _ = pos;
                if p.halted() {
                    break;
                }
            }
            assert_eq!(p.elected(), Some(Uid(2)).or(p.elected()), "sanity");
            assert_eq!(
                p.decision(),
                Some(Value(99)),
                "lone leader decides its own value"
            );
        }
    }
}
