//! Unique identifiers and the ID space `I` of the non-anonymous setting.

use crate::value::{Value, ValueDomain};
use std::fmt;

/// A unique process identifier drawn from an [`IdSpace`] — e.g. a MAC
/// address or a long random string (Section 1.1). This is application-level
/// identity, distinct from the simulation index `wan_sim::ProcessId`:
/// anonymous algorithms have neither; non-anonymous algorithms know their
/// `Uid` but *not* their simulation index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Uid(pub u64);

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id{}", self.0)
    }
}

/// The finite identifier space `I`. Section 7.3's protocol runs Algorithm 2
/// over `I` (to elect a leader) when `|I| < |V|`, which is why the space
/// doubles as a [`ValueDomain`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IdSpace {
    domain: ValueDomain,
}

impl IdSpace {
    /// An ID space of `size` identifiers `{0, …, size−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: u64) -> Self {
        IdSpace {
            domain: ValueDomain::new(size),
        }
    }

    /// `|I|`.
    pub fn size(&self) -> u64 {
        self.domain.size()
    }

    /// `⌈lg |I|⌉` (minimum 1).
    pub fn bits(&self) -> u32 {
        self.domain.bits()
    }

    /// Whether `id` belongs to the space.
    pub fn contains(&self, id: Uid) -> bool {
        self.domain.contains(Value(id.0))
    }

    /// The identifier space viewed as a value domain (for running
    /// Algorithm 2 over IDs).
    pub fn as_domain(&self) -> ValueDomain {
        self.domain
    }
}

impl fmt::Display for IdSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I[{}]", self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_space_basics() {
        let ids = IdSpace::new(16);
        assert_eq!(ids.size(), 16);
        assert_eq!(ids.bits(), 4);
        assert!(ids.contains(Uid(15)));
        assert!(!ids.contains(Uid(16)));
        assert_eq!(ids.as_domain().size(), 16);
        assert_eq!(ids.to_string(), "I[16]");
        assert_eq!(Uid(3).to_string(), "id3");
    }

    #[test]
    fn uid_ordering_matches_raw() {
        assert!(Uid(2) < Uid(10));
    }
}
