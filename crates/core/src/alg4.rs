//! Algorithm 3 of the paper (Section 7.4): anonymous consensus **without**
//! eventual collision freedom, using an always-accurate zero-complete
//! detector (`0-AC`) and no contention manager.
//!
//! Message delivery is never guaranteed, so processes communicate through
//! the collision detector alone: with zero completeness, "somebody
//! broadcast" is always observable (Noise Lemma), and with accuracy,
//! silence is never fabricated — one reliable bit per round. The algorithm
//! walks a balanced BST over the value space in lock-step, four rounds per
//! tree step:
//!
//! 1. **vote-val** — processes whose initial value *is* the current node's
//!    value broadcast;
//! 2. **vote-left** — processes whose initial value lies in the left
//!    subtree broadcast;
//! 3. **vote-right** — symmetric;
//! 4. **recurse** — everyone (identically!) decides the node value, or
//!    descends left, right, or ascends, based on which of the three voting
//!    rounds were audible.
//!
//! Because advice is accurate and zero-complete, all non-crashed processes
//! observe the *same* audibility vector (Lemma 14/15), so the walk never
//! diverges. Theorem 3: decides within `8·lg |V|` rounds after failures
//! cease (a crash can strand the walk in a subtree holding no live values,
//! forcing a climb back up — the paper's worst-case schedule, which
//! `tests/termination_bounds.rs` reproduces).
//!
//! We number rounds within the 4-round group exactly as the paper does (the
//! recurse round broadcasts nothing; the paper notes it could be folded
//! away to turn the 8 into a 6, and keeps it for clarity — so do we).

use crate::bst::BstNode;
use crate::consensus::ConsensusAutomaton;
use crate::value::{Value, ValueDomain};
use wan_sim::{Automaton, CmAdvice, RoundInput};

/// The only message: a contentless vote.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct VoteMsg;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    VoteVal,
    VoteLeft,
    VoteRight,
    Recurse,
}

/// One process of the paper's Algorithm 3 — an
/// `(E(0-AC, NoCM), V, NOCF)`-consensus algorithm. Anonymous; ignores the
/// contention manager entirely (it is designed for environments where no
/// broadcast is ever guaranteed to be delivered, so managing contention
/// buys nothing).
#[derive(Debug, Clone)]
pub struct BstConsensus {
    domain: ValueDomain,
    initial: Value,
    curr: BstNode,
    /// Ancestors of `curr` (the explicit parent stack).
    path: Vec<BstNode>,
    /// Audibility of the three voting rounds of the current group:
    /// `nav[j] = 1` iff messages or a collision were observed
    /// (the paper's navigation advice, Definition 21).
    nav: [bool; 3],
    decided: Option<Value>,
    halted: bool,
    rounds_done: u64,
}

impl BstConsensus {
    /// A process with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not in `domain`.
    pub fn new(domain: ValueDomain, initial: Value) -> Self {
        assert!(domain.contains(initial), "initial value outside domain");
        BstConsensus {
            domain,
            initial,
            curr: BstNode::root(domain),
            path: Vec::new(),
            nav: [false; 3],
            decided: None,
            halted: false,
            rounds_done: 0,
        }
    }

    /// The node the walk currently points at.
    pub fn current_node(&self) -> BstNode {
        self.curr
    }

    /// Current depth in the tree (root = 0).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// The value domain the walk covers.
    pub fn domain(&self) -> ValueDomain {
        self.domain
    }

    fn phase(&self) -> Phase {
        match self.rounds_done % 4 {
            0 => Phase::VoteVal,
            1 => Phase::VoteLeft,
            2 => Phase::VoteRight,
            _ => Phase::Recurse,
        }
    }
}

impl Automaton for BstConsensus {
    type Msg = VoteMsg;

    fn message(&self, _cm: CmAdvice) -> Option<VoteMsg> {
        if self.halted {
            return None;
        }
        let vote = match self.phase() {
            Phase::VoteVal => self.initial == self.curr.value(),
            Phase::VoteLeft => self.curr.in_left(self.initial),
            Phase::VoteRight => self.curr.in_right(self.initial),
            Phase::Recurse => false,
        };
        vote.then_some(VoteMsg)
    }

    fn transition(&mut self, input: RoundInput<'_, VoteMsg>) {
        let phase = self.phase();
        self.rounds_done += 1;
        if self.halted {
            return;
        }
        let audible = !input.received.is_empty() || input.cd.is_collision();
        match phase {
            Phase::VoteVal => self.nav[0] = audible,
            Phase::VoteLeft => self.nav[1] = audible,
            Phase::VoteRight => self.nav[2] = audible,
            Phase::Recurse => {
                // Lines 25-33. With an accurate detector the audible
                // child directions always exist; the guards make the
                // automaton total anyway (a false positive outside 0-AC
                // must not panic the walk).
                if self.nav[0] {
                    self.decided = Some(self.curr.value());
                    self.halted = true;
                } else if self.nav[1] && self.curr.left().is_some() {
                    self.path.push(self.curr);
                    self.curr = self.curr.left().expect("guarded");
                } else if self.nav[2] && self.curr.right().is_some() {
                    self.path.push(self.curr);
                    self.curr = self.curr.right().expect("guarded");
                } else {
                    // No votes at all (the voters crashed): climb. At the
                    // root, stay put and retry.
                    if let Some(parent) = self.path.pop() {
                        self.curr = parent;
                    }
                }
                self.nav = [false; 3];
            }
        }
    }

    fn is_contending(&self) -> bool {
        !self.halted
    }
}

impl ConsensusAutomaton for BstConsensus {
    fn initial_value(&self) -> Value {
        self.initial
    }

    fn decision(&self) -> Option<Value> {
        self.decided
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

/// Builds the full anonymous process vector for a run.
pub fn processes(domain: ValueDomain, initial_values: &[Value]) -> Vec<BstConsensus> {
    initial_values
        .iter()
        .map(|&v| BstConsensus::new(domain, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ConsensusRun;
    use wan_cd::{CdClass, CheckedDetector, ClassDetector, FreedomPolicy};
    use wan_cm::NoCm;
    use wan_sim::crash::NoCrashes;
    use wan_sim::loss::RandomLoss;
    use wan_sim::{Components, Round};

    /// Components with an always-accurate perfect-silence detector and
    /// *total* message loss: the adversarial NOCF regime the algorithm is
    /// built for.
    fn nocf_components(p_loss: f64, seed: u64) -> Components {
        Components {
            detector: Box::new(
                CheckedDetector::new(
                    ClassDetector::new(CdClass::ZERO_AC, FreedomPolicy::Quiet, seed),
                    CdClass::ZERO_AC,
                )
                .strict(),
            ),
            manager: Box::new(NoCm),
            loss: Box::new(RandomLoss::new(p_loss, seed)),
            crash: Box::new(NoCrashes),
        }
    }

    #[test]
    fn decides_under_total_message_loss() {
        // Nothing is ever delivered (except own messages); only the
        // detector carries information.
        let domain = ValueDomain::new(16);
        let values: Vec<Value> = [11, 2, 2, 7].into_iter().map(Value).collect();
        let procs = processes(domain, &values);
        let mut run = ConsensusRun::new(procs, nocf_components(1.0, 3));
        let outcome = run.run_to_completion(Round(200));
        assert!(outcome.terminated);
        assert!(outcome.is_safe());
        // Theorem 3 bound (no failures): 8·lg|V| rounds.
        assert!(
            outcome.last_decision().unwrap() <= Round(8 * 4),
            "decided at {:?}",
            outcome.last_decision()
        );
    }

    #[test]
    fn decides_the_min_reachable_vote_first() {
        // All processes share value 5 in V[8]; the walk goes root(mid 4) ->
        // right... check it lands exactly on 5 and everyone agrees.
        let domain = ValueDomain::new(8);
        let procs = processes(domain, &[Value(5), Value(5)]);
        let mut run = ConsensusRun::new(procs, nocf_components(1.0, 0));
        let outcome = run.run_to_completion(Round(200));
        assert_eq!(outcome.agreed_value(), Some(Value(5)));
    }

    #[test]
    fn partial_loss_also_works() {
        let domain = ValueDomain::new(32);
        let values: Vec<Value> = [30, 1, 17].into_iter().map(Value).collect();
        let procs = processes(domain, &values);
        let mut run = ConsensusRun::new(procs, nocf_components(0.6, 9));
        let outcome = run.run_to_completion(Round(400));
        assert!(outcome.terminated);
        assert!(outcome.is_safe());
    }

    #[test]
    fn walk_is_synchronized_across_processes() {
        let domain = ValueDomain::new(64);
        let values: Vec<Value> = [60, 3].into_iter().map(Value).collect();
        let mut run = ConsensusRun::new(processes(domain, &values), nocf_components(1.0, 4));
        for _ in 0..40 {
            run.step();
            let nodes: Vec<BstNode> = run
                .sim()
                .processes()
                .iter()
                .map(|p| p.current_node())
                .collect();
            assert!(
                nodes.windows(2).all(|w| w[0] == w[1]),
                "walk diverged: {nodes:?}"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Under any loss rate, the walk stays synchronized across
            /// processes, decisions agree, and the decided value is some
            /// process's initial value.
            #[test]
            fn walk_invariants(
                seed in 0u64..5000,
                loss in 0.0f64..1.0,
                v_size in 2u64..200,
                n in 2usize..6,
            ) {
                let domain = ValueDomain::new(v_size);
                let values: Vec<Value> =
                    (0..n).map(|i| Value((seed * 13 + i as u64) % v_size)).collect();
                let mut run = ConsensusRun::new(
                    processes(domain, &values),
                    nocf_components(loss, seed),
                );
                for _ in 0..(8 * domain.bits() + 8) {
                    run.step();
                    let nodes: Vec<BstNode> = run
                        .sim()
                        .processes()
                        .iter()
                        .map(|p| p.current_node())
                        .collect();
                    prop_assert!(
                        nodes.windows(2).all(|w| w[0] == w[1]),
                        "walk diverged: {nodes:?}"
                    );
                }
                let outcome = run.outcome();
                prop_assert!(outcome.is_safe(), "{:?}", outcome.safety_violations());
                prop_assert!(outcome.terminated, "undecided within 8·lg|V|+8");
            }
        }
    }

    #[test]
    fn singleton_domain_decides_immediately() {
        let domain = ValueDomain::new(1);
        let procs = processes(domain, &[Value(0), Value(0), Value(0)]);
        let mut run = ConsensusRun::new(procs, nocf_components(1.0, 5));
        let outcome = run.run_to_completion(Round(8));
        assert_eq!(outcome.agreed_value(), Some(Value(0)));
        assert!(outcome.last_decision().unwrap() <= Round(4));
    }
}
