//! Deliberately *incorrect* algorithms, used by the impossibility
//! demonstrations of `wan-adversary`.
//!
//! An impossibility theorem quantifies over all algorithms: every algorithm
//! either stalls forever in some admissible execution or violates safety in
//! one. The paper's own algorithms exhibit the first horn when run outside
//! their detector class (they simply never pass their silence tests); these
//! strawmen exhibit the second horn — they decide, and the adversarial
//! constructions of Section 8 drive them into agreement/validity violations
//! that the checker catches.

use crate::alg1::Alg1Msg;
use crate::consensus::ConsensusAutomaton;
use crate::value::{Value, ValueDomain};
use std::collections::BTreeSet;
use wan_sim::{Automaton, CmAdvice, RoundInput};

/// Algorithm 1 with the collision detector wires cut: it treats every round
/// as collision-free. Against honest environments it often "works"; under
/// the Theorem 4 partition construction the two halves silently decide
/// different values — exactly the behaviour Theorem 4 proves unavoidable
/// for *any* algorithm without collision detection.
#[derive(Debug, Clone)]
pub struct CdBlindOptimist {
    domain: ValueDomain,
    initial: Value,
    estimate: Value,
    last_proposal_values: BTreeSet<Value>,
    decided: Option<Value>,
    halted: bool,
    rounds_done: u64,
}

impl CdBlindOptimist {
    /// A process with the given initial value.
    pub fn new(domain: ValueDomain, initial: Value) -> Self {
        assert!(domain.contains(initial), "initial value outside domain");
        CdBlindOptimist {
            domain,
            initial,
            estimate: initial,
            last_proposal_values: BTreeSet::new(),
            decided: None,
            halted: false,
            rounds_done: 0,
        }
    }

    fn in_proposal(&self) -> bool {
        self.rounds_done.is_multiple_of(2)
    }
}

impl Automaton for CdBlindOptimist {
    type Msg = Alg1Msg;

    fn message(&self, cm: CmAdvice) -> Option<Alg1Msg> {
        if self.halted {
            return None;
        }
        if self.in_proposal() {
            cm.is_active().then_some(Alg1Msg::Estimate(self.estimate))
        } else {
            // Veto only on observed value disagreement — collisions are
            // invisible to it.
            (self.last_proposal_values.len() > 1).then_some(Alg1Msg::Veto)
        }
    }

    fn transition(&mut self, input: RoundInput<'_, Alg1Msg>) {
        let proposal = self.in_proposal();
        self.rounds_done += 1;
        if self.halted {
            return;
        }
        if proposal {
            let values: BTreeSet<Value> = input
                .received
                .support()
                .filter_map(|m| match m {
                    Alg1Msg::Estimate(v) => Some(*v),
                    Alg1Msg::Veto => None,
                })
                .collect();
            if let Some(&min) = values.iter().next() {
                debug_assert!(self.domain.contains(min));
                self.estimate = min;
            }
            self.last_proposal_values = values;
        } else if input.received.is_empty() && self.last_proposal_values.len() == 1 {
            self.decided = Some(self.estimate);
            self.halted = true;
        }
    }

    fn is_contending(&self) -> bool {
        !self.halted
    }
}

impl ConsensusAutomaton for CdBlindOptimist {
    fn initial_value(&self) -> Value {
        self.initial
    }
    fn decision(&self) -> Option<Value> {
        self.decided
    }
    fn halted(&self) -> bool {
        self.halted
    }
}

/// The maximally naive algorithm: broadcasts once, then decides the minimum
/// value it has seen (its own if nothing arrives) at the end of round
/// `patience`. Useful as a baseline that *any* nontrivial loss pattern
/// breaks.
#[derive(Debug, Clone)]
pub struct EagerDecider {
    domain: ValueDomain,
    initial: Value,
    best: Value,
    patience: u64,
    decided: Option<Value>,
    rounds_done: u64,
}

impl EagerDecider {
    /// A process deciding after `patience` rounds.
    pub fn new(domain: ValueDomain, initial: Value, patience: u64) -> Self {
        assert!(domain.contains(initial), "initial value outside domain");
        assert!(patience >= 1, "patience must be at least one round");
        EagerDecider {
            domain,
            initial,
            best: initial,
            patience,
            decided: None,
            rounds_done: 0,
        }
    }
}

impl Automaton for EagerDecider {
    type Msg = Value;

    fn message(&self, cm: CmAdvice) -> Option<Value> {
        (self.decided.is_none() && cm.is_active()).then_some(self.best)
    }

    fn transition(&mut self, input: RoundInput<'_, Value>) {
        self.rounds_done += 1;
        if self.decided.is_some() {
            return;
        }
        if let Some(&min) = input.received.min() {
            debug_assert!(self.domain.contains(min));
            self.best = self.best.min(min);
        }
        if self.rounds_done >= self.patience {
            self.decided = Some(self.best);
        }
    }

    fn is_contending(&self) -> bool {
        self.decided.is_none()
    }
}

impl ConsensusAutomaton for EagerDecider {
    fn initial_value(&self) -> Value {
        self.initial
    }
    fn decision(&self) -> Option<Value> {
        self.decided
    }
    fn halted(&self) -> bool {
        self.decided.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ConsensusRun;
    use wan_cd::NoCdDetector;
    use wan_cm::{LeaderElectionService, PreStabilization};
    use wan_sim::crash::NoCrashes;
    use wan_sim::loss::{IntraGroupRule, NoLoss, PartitionLoss};
    use wan_sim::{Components, ProcessId, Round};

    #[test]
    fn optimist_works_in_honest_environments() {
        let domain = ValueDomain::new(4);
        let procs: Vec<CdBlindOptimist> = [3, 1]
            .into_iter()
            .map(|v| CdBlindOptimist::new(domain, Value(v)))
            .collect();
        let components = Components {
            detector: Box::new(NoCdDetector),
            manager: Box::new(LeaderElectionService::new(
                Round(1),
                ProcessId(0),
                PreStabilization::AllPassive,
                0,
            )),
            loss: Box::new(NoLoss),
            crash: Box::new(NoCrashes),
        };
        let outcome = ConsensusRun::new(procs, components).run_to_completion(Round(20));
        assert!(outcome.terminated);
        assert!(outcome.is_safe());
        assert_eq!(
            outcome.agreed_value(),
            Some(Value(3)),
            "leader's value wins"
        );
    }

    #[test]
    fn optimist_splits_under_partition() {
        // The Theorem 4 shape: two groups that never hear each other, both
        // with a "leader" broadcasting. Without collision detection the
        // groups decide their own values.
        let domain = ValueDomain::new(4);
        let procs: Vec<CdBlindOptimist> = [0, 0, 1, 1]
            .into_iter()
            .map(|v| CdBlindOptimist::new(domain, Value(v)))
            .collect();
        let script = vec![
            vec![
                wan_sim::CmAdvice::Active,
                wan_sim::CmAdvice::Passive,
                wan_sim::CmAdvice::Active,
                wan_sim::CmAdvice::Passive,
            ];
            40
        ];
        let components = Components {
            detector: Box::new(NoCdDetector),
            manager: Box::new(wan_cm::ScriptedCm::new(script, Box::new(wan_cm::NoCm))),
            loss: Box::new(PartitionLoss::two_groups(4, 2, IntraGroupRule::Full)),
            crash: Box::new(NoCrashes),
        };
        let outcome = ConsensusRun::new(procs, components).run_to_completion(Round(30));
        let violations = outcome.safety_violations();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, crate::checker::SafetyViolation::Agreement { .. })),
            "expected an agreement violation, got {violations:?}"
        );
    }

    #[test]
    fn eager_decider_is_broken_by_one_lost_message() {
        let domain = ValueDomain::new(4);
        let procs = vec![
            EagerDecider::new(domain, Value(0), 1),
            EagerDecider::new(domain, Value(1), 1),
        ];
        let components = Components {
            detector: Box::new(NoCdDetector),
            manager: Box::new(wan_cm::NoCm),
            loss: Box::new(PartitionLoss::two_groups(2, 1, IntraGroupRule::Full)),
            crash: Box::new(NoCrashes),
        };
        let outcome = ConsensusRun::new(procs, components).run_to_completion(Round(5));
        assert!(!outcome.is_safe());
    }
}
