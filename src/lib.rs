//! # ccwan — Consensus and Collision Detectors in Wireless Ad Hoc Networks
//!
//! Umbrella crate for the reproduction of Newport, *Consensus and Collision
//! Detectors in Wireless Ad Hoc Networks* (PODC 2005 / MIT M.S. thesis 2006).
//!
//! This crate re-exports the workspace members under stable module names:
//!
//! * [`sim`] — the executable formal model (Section 3): automata, rounds,
//!   message-loss and crash adversaries, execution traces.
//! * [`cd`] — collision detector classes and implementations (Section 5).
//! * [`cm`] — contention managers (Section 4).
//! * [`consensus`] — the consensus problem and the four algorithms
//!   (Sections 6–7).
//! * [`adversary`] — executable lower bounds (Section 8).
//! * [`phy`] — the slotted SINR radio substrate backing the paper's
//!   empirical claims (Section 1).
//! * [`bench`](mod@bench) — the experiment harness and the scenario-sweep subsystem
//!   ([`bench::sweep`]): scenario registry plus the deterministic parallel
//!   sweep runner.
//!
//! See `README.md` for a guided tour and `examples/` for runnable scenarios.

pub use ccwan_core as consensus;
pub use wan_adversary as adversary;
pub use wan_bench as bench;
pub use wan_cd as cd;
pub use wan_cm as cm;
pub use wan_phy as phy;
pub use wan_sim as sim;
