//! Indistinguishability machinery, end-to-end: alpha/beta determinism and
//! the Lemma 23 composition against multiple algorithms.

use ccwan::adversary::alpha::AlphaExecution;
use ccwan::adversary::beta::BetaExecution;
use ccwan::adversary::sequences::{
    find_pair_with_shared_prefix, lemma21_depth, longest_shared_prefix_pair,
};
use ccwan::adversary::{compose_and_verify, observations_equal};
use ccwan::cd::CdClass;
use ccwan::consensus::{alg1, alg2, alg4, Value, ValueDomain};
use ccwan::sim::ProcessId;

#[test]
fn alpha_executions_are_deterministic_across_rebuilds() {
    let domain = ValueDomain::new(32);
    for v in [0u64, 9, 31] {
        let mk = || alg2::processes(domain, &[Value(v); 3]);
        let a = AlphaExecution::run(mk(), 30);
        let b = AlphaExecution::run(mk(), 30);
        for i in 0..3 {
            observations_equal(&a.trace, ProcessId(i), &b.trace, ProcessId(i), 30)
                .expect("alpha must replay exactly");
        }
    }
}

#[test]
fn pigeonhole_guarantee_holds_for_every_algorithm() {
    // Lemma 21's pigeonhole is algorithm-independent: for any anonymous
    // algorithm, some value pair shares the guaranteed depth.
    let domain = ValueDomain::new(64);
    let k = lemma21_depth(domain);
    // Algorithm 2.
    assert!(
        find_pair_with_shared_prefix(domain.values().collect::<Vec<_>>(), k, |&v| {
            AlphaExecution::run(alg2::processes(domain, &[v; 3]), k as u64).broadcast_seq(k)
        })
        .is_some()
    );
    // Algorithm 1.
    assert!(
        find_pair_with_shared_prefix(domain.values().collect::<Vec<_>>(), k, |&v| {
            AlphaExecution::run(alg1::processes(domain, &[v; 3]), k as u64).broadcast_seq(k)
        })
        .is_some()
    );
    // The BST algorithm.
    assert!(
        find_pair_with_shared_prefix(domain.values().collect::<Vec<_>>(), k, |&v| {
            AlphaExecution::run(alg4::processes(domain, &[v; 3]), k as u64).broadcast_seq(k)
        })
        .is_some()
    );
}

#[test]
fn composition_establishes_bound_for_alg2_across_domains() {
    for v_size in [16u64, 64, 128] {
        let domain = ValueDomain::new(v_size);
        let depth = 4 * (domain.bits() as usize + 2);
        let (v1, v2, shared) =
            longest_shared_prefix_pair(domain.values().collect::<Vec<_>>(), depth, |&v| {
                AlphaExecution::run(alg2::processes(domain, &[v; 3]), depth as u64)
                    .broadcast_seq(depth)
            })
            .unwrap();
        let report = compose_and_verify(
            || alg2::processes(domain, &[v1; 3]),
            || alg2::processes(domain, &[v2; 3]),
            shared.max(1),
            CdClass::HALF_AC,
        );
        assert!(
            report.establishes_lower_bound(),
            "|V|={v_size}: {:?}",
            report.indistinguishability_failure
        );
    }
}

#[test]
fn beta_executions_are_symmetric_and_deterministic() {
    let domain = ValueDomain::new(32);
    for v in [0u64, 17, 31] {
        let mk = || alg4::processes(domain, &[Value(v); 4]);
        let a = BetaExecution::run(mk(), 60);
        assert!(a.is_symmetric());
        let b = BetaExecution::run(mk(), 60);
        assert_eq!(a.binary_broadcast_seq(60), b.binary_broadcast_seq(60));
    }
}

#[test]
fn group_size_does_not_change_alpha_counts() {
    // Corollary 2 flavour: the broadcast-count sequence of an anonymous
    // algorithm's alpha execution depends on the value, not on which
    // specific equal-sized index set runs it. Rebuilding with the same n
    // must agree; and for Algorithm 2 the sequence is even n-independent
    // in the {0,1,2+} abstraction once n ≥ 2.
    let domain = ValueDomain::new(16);
    for v in [3u64, 12] {
        let s2 = AlphaExecution::run(alg2::processes(domain, &[Value(v); 2]), 12).broadcast_seq(12);
        let s5 = AlphaExecution::run(alg2::processes(domain, &[Value(v); 5]), 12).broadcast_seq(12);
        assert_eq!(s2, s5, "value {v}");
    }
}
