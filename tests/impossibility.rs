//! The six Section 8 results, end-to-end: each executable construction
//! must establish its theorem.

use ccwan::adversary::theorems;
use ccwan::consensus::{IdSpace, ValueDomain};

#[test]
fn theorem_4_no_collision_detection() {
    let r = theorems::t4_no_cd(ValueDomain::new(8), 4, 300);
    assert!(r.established, "{:#?}", r.details);
}

#[test]
fn theorem_5_no_accuracy() {
    let r = theorems::t5_no_acc(ValueDomain::new(8), 4, 300);
    assert!(r.established, "{:#?}", r.details);
}

#[test]
fn theorem_6_anonymous_half_ac_lower_bound() {
    for v_size in [16u64, 64, 256] {
        let r = theorems::t6_anon_half_ac(ValueDomain::new(v_size), 3);
        assert!(r.established, "|V|={v_size}: {:#?}", r.details);
    }
}

#[test]
fn majority_half_gap() {
    let r = theorems::maj_half_gap(ValueDomain::new(4));
    assert!(r.established, "{:#?}", r.details);
}

#[test]
fn theorem_7_nonanonymous_half_ac_lower_bound() {
    let r = theorems::t7_nonanon_half_ac(IdSpace::new(16), ValueDomain::new(1 << 12), 2);
    assert!(r.established, "{:#?}", r.details);
}

#[test]
fn theorem_8_eventual_accuracy_without_ecf() {
    for v_size in [32u64, 128] {
        let r = theorems::t8_ev_accuracy_nocf(ValueDomain::new(v_size), 3);
        assert!(r.established, "|V|={v_size}: {:#?}", r.details);
    }
}

#[test]
fn theorem_9_accuracy_without_ecf_lower_bound() {
    for v_size in [16u64, 64] {
        let r = theorems::t9_accuracy_nocf(ValueDomain::new(v_size), 3);
        assert!(r.established, "|V|={v_size}: {:#?}", r.details);
    }
}
