//! The sweep result cache's contracts: cache hits are byte-identical to
//! fresh execution, a warm cache executes zero cells, corrupted stores
//! degrade to fresh runs (never to wrong results), and cell keys move
//! with every content lane — spec parameters, seed, and the engine's
//! canary trace fingerprint.

use ccwan::bench::sweep::cache::{CellKey, SweepCache};
use ccwan::bench::sweep::spec::lattice_specs;
use ccwan::bench::{Scale, SweepRunner};
use proptest::prelude::*;
use std::path::PathBuf;

/// A unique, empty scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccwan-sweep-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn cold_and_warm_cached_sweeps_match_fresh_byte_for_byte() {
    let dir = scratch("cold-warm");
    let specs = lattice_specs(Scale::Quick);
    let runner = SweepRunner::with_threads(4);
    let fresh = runner.run_fresh(&specs);
    let cell_count: u64 = specs.iter().map(|s| s.seeds).sum();

    // Cold: everything misses, results identical to fresh.
    let mut cache = SweepCache::open(&dir);
    let cold = runner.run_with_cache(&specs, &mut cache);
    assert_eq!(cold, fresh);
    assert_eq!(cold.render(), fresh.render());
    assert_eq!(cache.stats.hits, 0);
    assert_eq!(cache.stats.misses, cell_count);
    cache.flush().expect("flush");

    // Warm, in a new process-equivalent (fresh open): zero cells execute,
    // results still byte-identical.
    let mut warm_cache = SweepCache::open(&dir);
    assert_eq!(warm_cache.stats.loaded, cell_count);
    let warm = runner.run_with_cache(&specs, &mut warm_cache);
    assert_eq!(warm, fresh);
    assert_eq!(warm.render(), fresh.render());
    assert_eq!(warm_cache.stats.hits, cell_count);
    assert_eq!(
        warm_cache.stats.misses, 0,
        "a warm cache must execute 0 cells"
    );
}

#[test]
fn scaling_a_spec_up_reuses_the_cached_prefix() {
    let dir = scratch("scale-up");
    let runner = SweepRunner::serial();
    let mut small = lattice_specs(Scale::Quick).swap_remove(0);
    small.seeds = 3;
    let mut big = small.clone();
    big.seeds = 5;
    assert_eq!(
        small.params_fingerprint(),
        big.params_fingerprint(),
        "the cell count must not participate in the params fingerprint"
    );

    let mut cache = SweepCache::open(&dir);
    runner.run_with_cache(std::slice::from_ref(&small), &mut cache);
    assert_eq!(cache.stats.misses, 3);
    let results = runner.run_with_cache(std::slice::from_ref(&big), &mut cache);
    assert_eq!(cache.stats.hits, 3, "the prefix cells must be reused");
    assert_eq!(cache.stats.misses, 5, "3 + the 2 new cells");
    assert_eq!(results, runner.run_fresh(std::slice::from_ref(&big)));
}

#[test]
fn cell_keys_move_with_every_content_lane() {
    let specs = lattice_specs(Scale::Quick);
    let spec = &specs[0];
    let canary = spec.canary_fingerprint();
    // Canary is itself deterministic (it is a traced reference run).
    assert_eq!(canary, spec.canary_fingerprint());

    let base = CellKey::derive(spec.params_fingerprint(), 1, spec.cell_seed(1), canary);

    // Different case / seed.
    assert_ne!(
        base,
        CellKey::derive(spec.params_fingerprint(), 2, spec.cell_seed(2), canary)
    );
    // Same params, synthetic different seed (as if the seed derivation
    // changed).
    assert_ne!(
        base,
        CellKey::derive(spec.params_fingerprint(), 1, spec.cell_seed(1) ^ 1, canary)
    );
    // A changed engine/algorithm behavior shows up as a changed canary.
    assert_ne!(
        base,
        CellKey::derive(spec.params_fingerprint(), 1, spec.cell_seed(1), canary ^ 1)
    );
    // Every spec parameter participates in the params fingerprint.
    for mutate in [
        |s: &mut ccwan::bench::ScenarioSpec| s.cap += 1,
        |s: &mut ccwan::bench::ScenarioSpec| s.v_size *= 2,
        |s: &mut ccwan::bench::ScenarioSpec| s.n += 1,
        |s: &mut ccwan::bench::ScenarioSpec| s.name.push('x'),
        |s: &mut ccwan::bench::ScenarioSpec| s.fixed_values = Some(vec![0; s.n]),
    ] {
        let mut changed = spec.clone();
        mutate(&mut changed);
        assert_ne!(
            spec.params_fingerprint(),
            changed.params_fingerprint(),
            "params fingerprint ignored a spec parameter"
        );
        assert_ne!(
            base,
            CellKey::derive(changed.params_fingerprint(), 1, spec.cell_seed(1), canary)
        );
    }
    // And distinct registry specs never share keys for the same case.
    assert_ne!(
        base,
        CellKey::derive(
            specs[1].params_fingerprint(),
            1,
            specs[1].cell_seed(1),
            canary
        )
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corrupting the store anywhere — truncation at an arbitrary byte, or
    /// a flipped byte — never panics the loader, never produces wrong
    /// sweep results, and at worst re-executes cells.
    #[test]
    fn corrupted_cache_files_degrade_to_fresh_runs(
        frac in 0.0f64..1.0,
        flip in any::<bool>(),
        offset in 1u8..255,
    ) {
        let specs = &lattice_specs(Scale::Quick)[..2];
        let runner = SweepRunner::serial();
        let fresh = runner.run_fresh(specs);

        // Build a pristine store in memory via a real flush.
        let dir = scratch("proptest-corrupt");
        let mut cache = SweepCache::open(&dir);
        runner.run_with_cache(specs, &mut cache);
        cache.flush().expect("flush");
        let pristine = std::fs::read(dir.join("cells.jsonl")).expect("read store");

        // Corrupt it.
        let pos = ((pristine.len().saturating_sub(1)) as f64 * frac) as usize;
        let corrupted = if flip {
            let mut bytes = pristine.clone();
            bytes[pos] = bytes[pos].wrapping_add(offset);
            bytes
        } else {
            pristine[..pos].to_vec()
        };

        // A loader fed the corrupted text must stay sane...
        let mut damaged = SweepCache::open(dir.join("empty-subdir"));
        damaged.absorb(&String::from_utf8_lossy(&corrupted));
        let total: u64 = specs.iter().map(|s| s.seeds).sum();
        prop_assert!(damaged.stats.loaded <= total);

        // ...and a sweep through it must still equal fresh execution,
        // re-running whatever was lost.
        let results = runner.run_with_cache(specs, &mut damaged);
        prop_assert_eq!(&results, &fresh);
        prop_assert_eq!(results.render(), fresh.render());
        prop_assert_eq!(damaged.stats.hits + damaged.stats.misses, total);
    }
}
