//! The sweep result cache's contracts: cache hits are byte-identical to
//! fresh execution, a warm cache executes zero cells, corrupted stores
//! degrade to fresh runs (never to wrong results), v1 (pre-probe) stores
//! are rejected and rebuilt cleanly, and cell keys move with every
//! content lane — spec parameters, seed, the engine's canary trace
//! fingerprint, and the probe-manifest fingerprint.

use ccwan::bench::sweep::cache::{CellKey, SweepCache};
use ccwan::bench::sweep::spec::lattice_specs;
use ccwan::bench::sweep::{ProbeKind, ProbeManifest};
use ccwan::bench::{Scale, SweepRunner};
use proptest::prelude::*;
use std::path::PathBuf;

/// A unique, empty scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccwan-sweep-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn cold_and_warm_cached_sweeps_match_fresh_byte_for_byte() {
    let dir = scratch("cold-warm");
    let specs = lattice_specs(Scale::Quick);
    let runner = SweepRunner::with_threads(4);
    let fresh = runner.run_fresh(&specs);
    let cell_count: u64 = specs.iter().map(|s| s.seeds).sum();

    // Cold: everything misses, results identical to fresh.
    let mut cache = SweepCache::open(&dir);
    let cold = runner.run_with_cache(&specs, &mut cache);
    assert_eq!(cold, fresh);
    assert_eq!(cold.render(), fresh.render());
    assert_eq!(cache.stats.hits, 0);
    assert_eq!(cache.stats.misses, cell_count);
    cache.flush().expect("flush");

    // Warm, in a new process-equivalent (fresh open): zero cells execute,
    // results still byte-identical — full metric rows served from disk.
    let mut warm_cache = SweepCache::open(&dir);
    assert_eq!(warm_cache.stats.loaded, cell_count);
    let warm = runner.run_with_cache(&specs, &mut warm_cache);
    assert_eq!(warm, fresh);
    assert_eq!(warm.render(), fresh.render());
    assert_eq!(warm_cache.stats.hits, cell_count);
    assert_eq!(
        warm_cache.stats.misses, 0,
        "a warm cache must execute 0 cells"
    );
}

#[test]
fn scaling_a_spec_up_reuses_the_cached_prefix() {
    let dir = scratch("scale-up");
    let runner = SweepRunner::serial();
    let mut small = lattice_specs(Scale::Quick).swap_remove(0);
    small.seeds = 3;
    let mut big = small.clone();
    big.seeds = 5;
    assert_eq!(
        small.params_fingerprint(),
        big.params_fingerprint(),
        "the cell count must not participate in the params fingerprint"
    );

    let mut cache = SweepCache::open(&dir);
    runner.run_with_cache(std::slice::from_ref(&small), &mut cache);
    assert_eq!(cache.stats.misses, 3);
    let results = runner.run_with_cache(std::slice::from_ref(&big), &mut cache);
    assert_eq!(cache.stats.hits, 3, "the prefix cells must be reused");
    assert_eq!(cache.stats.misses, 5, "3 + the 2 new cells");
    assert_eq!(results, runner.run_fresh(std::slice::from_ref(&big)));
}

#[test]
fn cell_keys_move_with_every_content_lane() {
    let specs = lattice_specs(Scale::Quick);
    let spec = &specs[0];
    let canary = spec.canary_fingerprint();
    // Canary is itself deterministic (it is a traced reference run).
    assert_eq!(canary, spec.canary_fingerprint());
    let probes = spec.probes.fingerprint();

    let base = CellKey::derive(
        spec.params_fingerprint(),
        1,
        spec.cell_seed(1),
        canary,
        probes,
    );

    // Different case / seed.
    assert_ne!(
        base,
        CellKey::derive(
            spec.params_fingerprint(),
            2,
            spec.cell_seed(2),
            canary,
            probes
        )
    );
    // Same params, synthetic different seed (as if the seed derivation
    // changed).
    assert_ne!(
        base,
        CellKey::derive(
            spec.params_fingerprint(),
            1,
            spec.cell_seed(1) ^ 1,
            canary,
            probes
        )
    );
    // A changed engine/algorithm behavior shows up as a changed canary.
    assert_ne!(
        base,
        CellKey::derive(
            spec.params_fingerprint(),
            1,
            spec.cell_seed(1),
            canary ^ 1,
            probes
        )
    );
    // A changed probe selection moves the key through its own lane.
    assert_ne!(
        base,
        CellKey::derive(
            spec.params_fingerprint(),
            1,
            spec.cell_seed(1),
            canary,
            ProbeManifest::outcome_only().fingerprint()
        )
    );
    // Every spec parameter participates in the params fingerprint.
    for mutate in [
        |s: &mut ccwan::bench::ScenarioSpec| s.cap += 1,
        |s: &mut ccwan::bench::ScenarioSpec| s.v_size *= 2,
        |s: &mut ccwan::bench::ScenarioSpec| s.n += 1,
        |s: &mut ccwan::bench::ScenarioSpec| s.name.push('x'),
        |s: &mut ccwan::bench::ScenarioSpec| s.fixed_values = Some(vec![0; s.n]),
    ] {
        let mut changed = spec.clone();
        mutate(&mut changed);
        assert_ne!(
            spec.params_fingerprint(),
            changed.params_fingerprint(),
            "params fingerprint ignored a spec parameter"
        );
        assert_ne!(
            base,
            CellKey::derive(
                changed.params_fingerprint(),
                1,
                spec.cell_seed(1),
                canary,
                probes
            )
        );
    }
    // And distinct registry specs never share keys for the same case.
    assert_ne!(
        base,
        CellKey::derive(
            specs[1].params_fingerprint(),
            1,
            specs[1].cell_seed(1),
            canary,
            probes
        )
    );
}

/// Changing one spec's probe manifest invalidates exactly that spec's
/// cached cells; every other spec's cells stay warm.
#[test]
fn adding_a_probe_invalidates_only_the_affected_spec() {
    let dir = scratch("probe-lane");
    let runner = SweepRunner::serial();
    let mut specs: Vec<_> = lattice_specs(Scale::Quick).into_iter().take(2).collect();
    let per_spec: u64 = specs[0].seeds;

    let mut cache = SweepCache::open(&dir);
    runner.run_with_cache(&specs, &mut cache);
    assert_eq!(cache.stats.misses, 2 * per_spec);

    // Drop spec 0 to an outcome-only manifest: only its cells re-run.
    specs[0].probes = ProbeManifest::outcome_only();
    let results = runner.run_with_cache(&specs, &mut cache);
    assert_eq!(
        cache.stats.hits, per_spec,
        "the untouched spec must stay warm"
    );
    assert_eq!(
        cache.stats.misses,
        3 * per_spec,
        "only the changed spec's cells re-execute"
    );
    assert_eq!(results, runner.run_fresh(&specs));

    // Restoring a richer manifest (one extra probe over outcome-only)
    // misses again — a third distinct key set.
    specs[0].probes = ProbeManifest::of(&[ProbeKind::BroadcastCount]);
    runner.run_with_cache(&specs, &mut cache);
    assert_eq!(cache.stats.misses, 4 * per_spec);
}

/// The scoped RAII form of the cache — `SweepCache::open_scoped` +
/// `SweepRunner::run_with` — serves the same results as the raw store,
/// flushes without an explicit call when the handle drops, and two
/// scoped handles over different directories never cross-talk (the
/// property the per-shard farm workers rely on).
#[test]
fn scoped_handles_serve_sweeps_and_flush_on_drop() {
    let dir_a = scratch("scoped-a");
    let dir_b = scratch("scoped-b");
    let specs = lattice_specs(Scale::Quick);
    let runner = SweepRunner::with_threads(2);
    let fresh = runner.run_fresh(&specs[..2]);
    let cell_count: u64 = specs[..2].iter().map(|s| s.seeds).sum();

    {
        let scoped = SweepCache::open_scoped(&dir_a);
        assert_eq!(runner.run_with(&specs[..2], &scoped), fresh);
        assert_eq!(scoped.stats().misses, cell_count);
        // A *different* scoped handle is a different store: running one
        // spec through it must not see the other handle's cells.
        let other = SweepCache::open_scoped(&dir_b);
        runner.run_with(&specs[..1], &other);
        assert_eq!(other.stats().hits, 0, "scoped stores must not cross-talk");
    } // both handles drop here; run_with already flushed, drop is a no-op

    let warm = SweepCache::open(&dir_a);
    assert_eq!(
        warm.stats.loaded, cell_count,
        "the scoped handle must have persisted its store"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// A v1 (pre-probe) store on disk is discarded wholesale — loaded
/// entries 0, no error — and the sweep re-executes and rebuilds a v2
/// store that a fresh open then serves warm.
#[test]
fn v1_store_is_discarded_and_rebuilt_by_a_sweep() {
    let dir = scratch("v1-migration");
    // A faithful v1 file: v1 header plus the old line schema.
    let v1 = "{\"ccwan-sweep-cache\":1}\n\
              {\"key\":\"0123456789abcdef0123456789abcdef\",\"spec\":\"lattice/maj-AC\",\
              \"case\":0,\"seed\":123,\"ref\":6,\"decided\":8,\"terminated\":true,\"safe\":true,\
              \"crc\":\"0000000000000000\"}\n";
    std::fs::write(dir.join("cells.jsonl"), v1).expect("write v1 store");

    let specs = &lattice_specs(Scale::Quick)[..1];
    let runner = SweepRunner::serial();
    let mut cache = SweepCache::open(&dir);
    assert_eq!(cache.stats.loaded, 0, "no v1 entry may load");
    assert_eq!(cache.stats.skipped_lines, 2, "header + line discarded");

    let results = runner.run_with_cache(specs, &mut cache);
    assert_eq!(cache.stats.hits, 0, "nothing can hit against a v1 store");
    assert_eq!(results, runner.run_fresh(specs));
    cache.flush().expect("flush");

    let rebuilt = std::fs::read_to_string(dir.join("cells.jsonl")).expect("read rebuilt");
    assert!(rebuilt.starts_with("{\"ccwan-sweep-cache\":2}"));
    assert!(!rebuilt.contains("\"decided\""), "no v1 line survives");
    let mut warm = SweepCache::open(&dir);
    assert_eq!(warm.stats.loaded, specs[0].seeds);
    runner.run_with_cache(specs, &mut warm);
    assert_eq!(warm.stats.misses, 0, "the rebuilt v2 store serves warm");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corrupting the store anywhere — truncation at an arbitrary byte, or
    /// a flipped byte — never panics the loader, never produces wrong
    /// sweep results, and at worst re-executes cells.
    #[test]
    fn corrupted_cache_files_degrade_to_fresh_runs(
        frac in 0.0f64..1.0,
        flip in any::<bool>(),
        offset in 1u8..255,
    ) {
        let specs = &lattice_specs(Scale::Quick)[..2];
        let runner = SweepRunner::serial();
        let fresh = runner.run_fresh(specs);

        // Build a pristine store in memory via a real flush.
        let dir = scratch("proptest-corrupt");
        let mut cache = SweepCache::open(&dir);
        runner.run_with_cache(specs, &mut cache);
        cache.flush().expect("flush");
        let pristine = std::fs::read(dir.join("cells.jsonl")).expect("read store");

        // Corrupt it.
        let pos = ((pristine.len().saturating_sub(1)) as f64 * frac) as usize;
        let corrupted = if flip {
            let mut bytes = pristine.clone();
            bytes[pos] = bytes[pos].wrapping_add(offset);
            bytes
        } else {
            pristine[..pos].to_vec()
        };

        // A loader fed the corrupted text must stay sane...
        let mut damaged = SweepCache::open(dir.join("empty-subdir"));
        damaged.absorb(&String::from_utf8_lossy(&corrupted));
        let total: u64 = specs.iter().map(|s| s.seeds).sum();
        prop_assert!(damaged.stats.loaded <= total);

        // ...and a sweep through it must still equal fresh execution,
        // re-running whatever was lost.
        let results = runner.run_with_cache(specs, &mut damaged);
        prop_assert_eq!(&results, &fresh);
        prop_assert_eq!(results.render(), fresh.render());
        prop_assert_eq!(damaged.stats.hits + damaged.stats.misses, total);
    }
}
