//! Extension results: the Section 4.1 counting separation and the
//! Section 9 open-question probe, end-to-end.

use ccwan::adversary::theorems;
use ccwan::cd::{
    CdClass, CheckedDetector, ClassDetector, Completeness, FreedomPolicy, OccasionalDetector,
};
use ccwan::cm::{KWakeUp, PreStabilization, WakeUpService};
use ccwan::consensus::{alg1, alg2, counting, ConsensusRun, Value, ValueDomain};
use ccwan::sim::crash::NoCrashes;
use ccwan::sim::loss::{Ecf, RandomLoss};
use ccwan::sim::{Components, ProcessId, Round, Simulation};

#[test]
fn counting_is_exact_under_k_wakeup_with_heavy_loss() {
    for n in 1..=8usize {
        for (k, loss, seed) in [(1u64, 0.0, 1u64), (2, 0.8, 2), (3, 1.0, 3)] {
            let mut sim = Simulation::new(
                counting::processes(n, k),
                Components {
                    detector: Box::new(
                        CheckedDetector::new(
                            ClassDetector::new(CdClass::ZERO_AC, FreedomPolicy::Quiet, seed),
                            CdClass::ZERO_AC,
                        )
                        .strict(),
                    ),
                    manager: Box::new(KWakeUp::new(k, 0)),
                    loss: Box::new(RandomLoss::new(loss, seed)),
                    crash: Box::new(NoCrashes),
                },
            );
            sim.run(k * n as u64 + 2);
            assert!(
                sim.processes().iter().all(|p| p.count() == Some(n as u64)),
                "n={n} k={k} loss={loss}"
            );
        }
    }
}

#[test]
fn no_completeness_remark_holds() {
    let r = theorems::no_completeness(ValueDomain::new(16), 4);
    assert!(r.established, "{:#?}", r.details);
}

/// The Section 9 probe: there exists an environment in which Algorithm 1
/// paired with an occasionally-majority-complete detector violates
/// agreement, while Algorithm 2 (claiming only the weak class) stays safe
/// in the very same environments.
#[test]
fn occasional_strength_cannot_carry_safety() {
    let domain = ValueDomain::new(16);
    let n = 4;
    let env = |seed: u64, strong_prob: f64| Components {
        detector: Box::new(OccasionalDetector::new(
            Completeness::Zero,
            Completeness::Majority,
            strong_prob,
            seed,
        )),
        manager: Box::new(WakeUpService::new(
            Round(30),
            ProcessId(0),
            PreStabilization::AllActive,
            seed,
        )),
        loss: Box::new(Ecf::new(RandomLoss::new(0.5, seed), Round(30))),
        crash: Box::new(NoCrashes),
    };
    let mut alg1_violation_found = false;
    for seed in 0..300u64 {
        let values: Vec<Value> = (0..n).map(|i| Value((seed + i) % 16)).collect();
        let out1 =
            ConsensusRun::new(alg1::processes(domain, &values), env(seed, 0.9)).run_rounds(120);
        alg1_violation_found |= !out1.is_safe();
        // Algorithm 2 must be safe in every one of these environments: the
        // detector *does* honour zero completeness and accuracy.
        let out2 =
            ConsensusRun::new(alg2::processes(domain, &values), env(seed, 0.9)).run_rounds(120);
        assert!(
            out2.is_safe(),
            "seed {seed}: {:?}",
            out2.safety_violations()
        );
    }
    assert!(
        alg1_violation_found,
        "expected at least one Algorithm 1 split under 90%-majority completeness"
    );
}

/// With P(strong) = 1 the occasional detector *is* majority-complete, and
/// Algorithm 1 is safe and fast again — the probe's control arm.
#[test]
fn always_strong_is_just_the_strong_class() {
    let domain = ValueDomain::new(16);
    for seed in 0..20u64 {
        let values: Vec<Value> = (0..4).map(|i| Value((seed + i) % 16)).collect();
        let components = Components {
            detector: Box::new(OccasionalDetector::new(
                Completeness::Zero,
                Completeness::Majority,
                1.0,
                seed,
            )),
            manager: Box::new(WakeUpService::new(
                Round(10),
                ProcessId(0),
                PreStabilization::AllActive,
                seed,
            )),
            loss: Box::new(Ecf::new(RandomLoss::new(0.5, seed), Round(10))),
            crash: Box::new(NoCrashes),
        };
        let mut run = ConsensusRun::new(alg1::processes(domain, &values), components);
        let outcome = run.run_to_completion(Round(60));
        assert!(outcome.is_safe(), "seed {seed}");
        assert!(outcome.terminated, "seed {seed}");
        assert!(outcome.last_decision().unwrap() <= Round(12), "seed {seed}");
    }
}
