//! Conformance of recorded executions to Definition 11's constraints and
//! the derived lemmas — checked on real runs of real algorithms, not on
//! synthetic traces.

use ccwan::cd::{CdClass, ClassDetector, FreedomPolicy};
use ccwan::cm::{verify_leader_election, verify_wakeup, FairWakeUp, PreStabilization};
use ccwan::consensus::{alg1, alg2, ConsensusRun, Value, ValueDomain};
use ccwan::sim::crash::RandomCrashes;
use ccwan::sim::loss::{Ecf, RandomLoss};
use ccwan::sim::{Components, Multiset, ProcessId, Round};

fn run_alg2(
    seed: u64,
    cst: u64,
    rounds: u64,
) -> ConsensusRun<ccwan::consensus::alg2::ZeroEcfConsensus> {
    let domain = ValueDomain::new(32);
    let values: Vec<Value> = (0..5).map(|i| Value((seed + i) % 32)).collect();
    let mut run = ConsensusRun::new(
        alg2::processes(domain, &values),
        Components {
            detector: Box::new(
                ClassDetector::new(CdClass::ZERO_EV_AC, FreedomPolicy::Random { p: 0.3 }, seed)
                    .accurate_from(Round(cst)),
            ),
            manager: Box::new(FairWakeUp::new(
                Round(cst),
                PreStabilization::Random { p: 0.5 },
                seed,
            )),
            loss: Box::new(Ecf::new(RandomLoss::new(0.5, seed), Round(cst))),
            crash: Box::new(RandomCrashes::new(0.01, 2, seed)),
        },
    );
    run.run_rounds(rounds);
    run
}

/// Constraint 4 (integrity / no duplication): every receive multiset is a
/// sub-multiset of the round's broadcast multiset.
#[test]
fn receive_sets_are_submultisets_of_broadcasts() {
    for seed in 0..8u64 {
        let run = run_alg2(seed, 8, 40);
        for rec in run.trace().rounds() {
            let broadcast: Multiset<_> = rec.sent_messages().iter().cloned().collect();
            for i in 0..rec.n() {
                let received = rec.received_of(ProcessId(i)).expect("full trace detail");
                assert!(
                    received.is_submultiset_of(&broadcast),
                    "seed {seed} {} p{i}: {received:?} ⊄ {broadcast:?}",
                    rec.round()
                );
            }
        }
    }
}

/// Constraint 5: broadcasters always receive their own message.
#[test]
fn broadcasters_receive_their_own_message() {
    for seed in 0..8u64 {
        let run = run_alg2(seed, 8, 40);
        for rec in run.trace().rounds() {
            for s in rec.senders() {
                let msg = rec.sent(s).expect("sender has a message");
                let received = rec.received_of(s).expect("full trace detail");
                assert!(
                    received.count(msg) >= 1,
                    "seed {seed} {}: {s} missing its own {msg:?}",
                    rec.round()
                );
            }
        }
    }
}

/// Lemma 2 (Noise Lemma) on live traces: with a zero-complete detector, if
/// anyone broadcast, every process received something or saw `±`.
#[test]
fn noise_lemma_holds_on_traces() {
    for seed in 0..8u64 {
        let run = run_alg2(seed, 8, 40);
        for rec in run.trace().rounds() {
            let c = rec.senders().len();
            if c == 0 {
                continue;
            }
            for (i, (&t, advice)) in rec
                .received_counts()
                .iter()
                .zip(rec.cd().iter())
                .enumerate()
            {
                assert!(
                    t > 0 || advice.is_collision(),
                    "seed {seed} {} p{i}: c={c}, T=0, advice=null",
                    rec.round()
                );
            }
        }
    }
}

/// Property 1 on live traces: from `r_cf` on, a solo broadcast reaches
/// every process.
#[test]
fn ecf_holds_on_traces() {
    for seed in 0..8u64 {
        let cst = 8;
        let run = run_alg2(seed, cst, 60);
        for rec in run.trace().rounds() {
            if rec.round() < Round(cst) {
                continue;
            }
            let senders = rec.senders();
            if senders.len() == 1 {
                for (i, &t) in rec.received_counts().iter().enumerate() {
                    assert!(
                        t >= 1,
                        "seed {seed} {}: solo broadcast lost at p{i}",
                        rec.round()
                    );
                }
            }
        }
    }
}

/// Property 2 on live traces: the fair wake-up service really does
/// stabilize to a single active process (and, not rotating here, even to a
/// leader while no decision-halts intervene).
#[test]
fn wakeup_property_holds_on_traces() {
    for seed in 0..8u64 {
        let cst = 8;
        let domain = ValueDomain::new(8);
        // No halting interference: run only until just before decisions.
        let values: Vec<Value> = (0..4).map(|i| Value((seed + i) % 8)).collect();
        let mut run = ConsensusRun::new(
            alg1::processes(domain, &values),
            Components {
                detector: Box::new(ClassDetector::new(
                    CdClass::MAJ_EV_AC,
                    FreedomPolicy::Noisy,
                    seed,
                )),
                manager: Box::new(FairWakeUp::new(
                    Round(cst),
                    PreStabilization::AllActive,
                    seed,
                )),
                // Never accurate, never collision-free: nobody ever halts,
                // so the CM target never changes.
                loss: Box::new(RandomLoss::new(0.9, seed)),
                crash: Box::new(ccwan::sim::crash::NoCrashes),
            },
        );
        run.run_rounds(40);
        assert_eq!(verify_wakeup(run.trace(), Round(cst)), Ok(()));
        assert!(verify_leader_election(run.trace(), Round(cst)).is_ok());
    }
}

/// Determinism: identical configurations yield identical traces.
#[test]
fn executions_replay_exactly() {
    let a = run_alg2(5, 8, 50);
    let b = run_alg2(5, 8, 50);
    assert_eq!(a.trace().len(), b.trace().len());
    for (ra, rb) in a.trace().rounds().zip(b.trace().rounds()) {
        assert_eq!(ra.senders(), rb.senders());
        assert_eq!(ra.sent_messages(), rb.sent_messages());
        assert_eq!(ra.cd(), rb.cd());
        assert_eq!(ra.cm(), rb.cm());
        assert_eq!(ra.received_counts(), rb.received_counts());
    }
}
