//! Fault-tolerance torture for the corrected Section 7.3 protocol: leader
//! crashes at every phase of the protocol, cascading crashes, and crashes
//! interleaved with lossy prefixes. Safety must hold in every schedule;
//! termination in all of these (they avoid the documented probabilistic-
//! liveness corner by keeping at least one synced survivor).

use ccwan::cd::{CdClass, CheckedDetector, ClassDetector, FreedomPolicy};
use ccwan::cm::FairWakeUp;
use ccwan::consensus::{alg3, ConsensusRun, IdSpace, Uid, Value, ValueDomain};
use ccwan::sim::crash::ScheduledCrashes;
use ccwan::sim::loss::{Ecf, RandomLoss};
use ccwan::sim::{Components, ProcessId, Round};

fn run_with_crashes(
    crashes: &[(usize, u64)],
    seed: u64,
    loss: f64,
    r_stab: u64,
) -> ccwan::consensus::ConsensusOutcome {
    let ids = IdSpace::new(16);
    let domain = ValueDomain::new(1 << 16);
    let assignments: Vec<(Uid, Value)> = (0..5u64)
        .map(|j| (Uid(2 * j + 1), Value(10_000 + j * 997)))
        .collect();
    let crash =
        ScheduledCrashes::from_pairs(crashes.iter().map(|&(p, r)| (ProcessId(p), Round(r))));
    let components = Components {
        detector: Box::new(
            CheckedDetector::new(
                ClassDetector::new(CdClass::ZERO_EV_AC, FreedomPolicy::Random { p: 0.2 }, seed)
                    .accurate_from(Round(r_stab)),
                CdClass::ZERO_EV_AC,
            )
            .strict(),
        ),
        manager: Box::new(FairWakeUp::new(
            Round(r_stab),
            ccwan::cm::PreStabilization::Random { p: 0.4 },
            seed,
        )),
        loss: Box::new(Ecf::new(RandomLoss::new(loss, seed), Round(r_stab))),
        crash: Box::new(crash),
    };
    let mut run = ConsensusRun::new(alg3::processes(ids, domain, &assignments, seed), components);
    run.run_to_completion(Round(12_000))
}

/// The leader (Uid(1), index 0, minimum id) crashes at each round of the
/// first few protocol groups: election rounds, value rounds, veto rounds,
/// sync rounds.
#[test]
fn leader_crash_at_every_early_round_is_survived() {
    for crash_round in 1..=40u64 {
        let outcome = run_with_crashes(&[(0, crash_round)], 7, 0.0, 1);
        assert!(
            outcome.is_safe(),
            "crash at r{crash_round}: {:?}",
            outcome.safety_violations()
        );
        assert!(
            outcome.terminated,
            "crash at r{crash_round}: survivors stuck"
        );
        // Validity: the decision is some process's initial value.
        let v = outcome.agreed_value().expect("agreement among survivors");
        assert!(outcome.initial_values.contains(&v));
    }
}

/// Cascading leader deaths: each successor is killed shortly after the
/// previous one.
#[test]
fn cascading_leader_crashes_are_survived() {
    for seed in 0..5u64 {
        let outcome = run_with_crashes(&[(0, 15), (1, 60), (2, 120)], seed, 0.0, 1);
        assert!(outcome.is_safe(), "seed {seed}");
        assert!(outcome.terminated, "seed {seed}");
    }
}

/// Crashes during a lossy, noisy prefix (before CST): the protocol must
/// still converge once the environment stabilizes.
#[test]
fn crashes_during_chaotic_prefix() {
    for seed in 0..5u64 {
        let outcome = run_with_crashes(&[(0, 5), (2, 25)], seed, 0.6, 50);
        assert!(
            outcome.is_safe(),
            "seed {seed}: {:?}",
            outcome.safety_violations()
        );
        assert!(outcome.terminated, "seed {seed}");
    }
}

/// All but one process crashes; the lone survivor must still decide
/// (termination holds for any number of failures).
#[test]
fn lone_survivor_decides() {
    for seed in 0..4u64 {
        let outcome = run_with_crashes(&[(0, 10), (1, 14), (2, 18), (3, 22)], seed, 0.0, 1);
        assert!(outcome.is_safe(), "seed {seed}");
        assert!(
            outcome.terminated,
            "seed {seed}: the survivor never decided"
        );
        let survivor_decision = outcome.decisions[4];
        assert!(survivor_decision.is_some());
    }
}

/// Direct mode (|V| ≤ |I|) under crashes behaves like Algorithm 2.
#[test]
fn direct_mode_crash_tolerance() {
    let ids = IdSpace::new(256);
    let domain = ValueDomain::new(16);
    for seed in 0..5u64 {
        let assignments: Vec<(Uid, Value)> = (0..4u64)
            .map(|j| (Uid(seed * 4 + j), Value((seed + j) % 16)))
            .collect();
        let crash = ScheduledCrashes::new().crash(ProcessId(0), Round(3 + seed));
        let components = Components {
            detector: Box::new(
                CheckedDetector::new(
                    ClassDetector::new(CdClass::ZERO_EV_AC, FreedomPolicy::Quiet, seed),
                    CdClass::ZERO_EV_AC,
                )
                .strict(),
            ),
            manager: Box::new(FairWakeUp::immediate()),
            loss: Box::new(Ecf::new(RandomLoss::new(0.0, seed), Round(1))),
            crash: Box::new(crash),
        };
        let mut run =
            ConsensusRun::new(alg3::processes(ids, domain, &assignments, seed), components);
        let outcome = run.run_to_completion(Round(500));
        assert!(outcome.is_safe() && outcome.terminated, "seed {seed}");
    }
}
