//! The shard/merge algebra behind the multi-process sweep farm:
//!
//! * the `CellKey` partition is total — every cell lands in exactly one
//!   shard, and the union of the m shard stores is byte-for-byte the
//!   unsharded store (canonical key-sorted form, any thread count);
//! * merging is idempotent and order-independent on the actual file
//!   bytes;
//! * a corrupted shard line is skipped with the same tolerance the
//!   single-store loader has — the merge survives and the lost cells
//!   simply re-execute on the next sweep;
//! * divergent rows under one key (a determinism violation) abort the
//!   merge before anything is written.

use ccwan::bench::sweep::cache::{CellKey, SweepCache};
use ccwan::bench::sweep::spec::lattice_specs;
use ccwan::bench::sweep::{merge_stores, MergeError, ScenarioSpec, ShardSpec};
use ccwan::bench::{Scale, SweepRunner};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// A unique, empty scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccwan-shard-merge-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs each of the `m` shards into its own store under `base` (the way
/// the farm's subprocesses do, minus the processes) and returns the
/// store directories.
fn run_sharded(
    base: &Path,
    m: u32,
    threads: usize,
    specs: &[ScenarioSpec],
) -> (Vec<PathBuf>, u64, u64) {
    let runner = SweepRunner::with_threads(threads);
    let (mut owned, mut executed) = (0u64, 0u64);
    let dirs: Vec<PathBuf> = (0..m)
        .map(|i| {
            let dir = base.join(format!("shard-{i}"));
            let mut store = SweepCache::open(&dir);
            let shard = ShardSpec::new(i, m).expect("i < m");
            let report = runner.run_shard(specs, shard, &mut store);
            store.flush().expect("flush shard store");
            owned += report.owned_cells;
            executed += report.executed;
            dir
        })
        .collect();
    (dirs, owned, executed)
}

/// The canonical bytes of an unsharded cached sweep over `specs`.
fn unsharded_store_bytes(base: &Path, specs: &[ScenarioSpec]) -> Vec<u8> {
    let dir = base.join("unsharded");
    let mut store = SweepCache::open(&dir);
    SweepRunner::with_threads(2).run_with_cache(specs, &mut store);
    store.write_canonical().expect("write canonical store");
    std::fs::read(dir.join("cells.jsonl")).expect("read unsharded store")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The farm's core identity: for any shard count and worker thread
    /// count, every cell is owned exactly once, and merging the m shard
    /// stores reproduces the unsharded store byte-for-byte.
    #[test]
    fn union_of_shard_stores_equals_the_unsharded_store(
        m in 1u32..=5,
        threads in 1usize..=4,
    ) {
        let base = scratch(&format!("union-{m}-{threads}"));
        let specs = &lattice_specs(Scale::Quick)[..3];
        let total: u64 = specs.iter().map(|s| s.seeds).sum();

        let (dirs, owned, executed) = run_sharded(&base, m, threads, specs);
        prop_assert_eq!(owned, total, "every cell must be owned exactly once");
        prop_assert_eq!(executed, total, "cold shards execute everything they own");

        let dest = base.join("merged");
        let stats = merge_stores(&dest, &dirs).expect("clean merge");
        prop_assert_eq!(stats.distinct, total);
        prop_assert_eq!(stats.duplicates, 0, "shards are disjoint");
        prop_assert_eq!(stats.skipped_lines, 0);

        let merged = std::fs::read(dest.join("cells.jsonl")).expect("read merged store");
        prop_assert_eq!(&merged, &unsharded_store_bytes(&base, specs));
        let _ = std::fs::remove_dir_all(&base);
    }
}

#[test]
fn merge_is_idempotent_and_order_independent() {
    let base = scratch("algebra");
    let specs = &lattice_specs(Scale::Quick)[..3];
    let (dirs, _, _) = run_sharded(&base, 3, 2, specs);

    let forward = base.join("forward");
    let stats = merge_stores(&forward, &dirs).expect("clean merge");
    let forward_bytes = std::fs::read(forward.join("cells.jsonl")).expect("read");
    assert_eq!(stats.duplicates, 0);

    // Order independence: fold the same stores in reverse.
    let reversed: Vec<PathBuf> = dirs.iter().rev().cloned().collect();
    let backward = base.join("backward");
    merge_stores(&backward, &reversed).expect("clean merge");
    assert_eq!(
        forward_bytes,
        std::fs::read(backward.join("cells.jsonl")).expect("read"),
        "merged bytes must depend only on the cell set"
    );

    // Idempotence: re-merging the sources into an already-merged store
    // changes nothing and collapses every line as a duplicate.
    let again = merge_stores(&forward, &dirs).expect("clean re-merge");
    assert_eq!(again.duplicates, again.loaded - stats.distinct);
    assert_eq!(again.distinct, stats.distinct);
    assert_eq!(
        forward_bytes,
        std::fs::read(forward.join("cells.jsonl")).expect("read"),
        "re-merging a merged store must be a no-op on the bytes"
    );

    // And merging a merged store *as a source* is the same set again.
    let folded = base.join("folded");
    merge_stores(&folded, std::slice::from_ref(&forward)).expect("clean merge");
    assert_eq!(
        forward_bytes,
        std::fs::read(folded.join("cells.jsonl")).expect("read")
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn corrupted_shard_lines_are_skipped_and_reexecuted_not_fatal() {
    let base = scratch("corrupt");
    let specs = &lattice_specs(Scale::Quick)[..2];
    let total: u64 = specs.iter().map(|s| s.seeds).sum();
    let (dirs, _, _) = run_sharded(&base, 2, 2, specs);

    // Flip a byte in the middle of shard 0's store: at most that one
    // line is lost, never the merge.
    let victim = dirs[0].join("cells.jsonl");
    let mut bytes = std::fs::read(&victim).expect("read shard store");
    let mid = bytes.len() * 2 / 3;
    bytes[mid] = bytes[mid].wrapping_add(1);
    std::fs::write(&victim, &bytes).expect("write corrupted store");

    let dest = base.join("merged");
    let stats = merge_stores(&dest, &dirs).expect("corruption must not abort the merge");
    assert!(
        stats.skipped_lines <= 2,
        "a flipped byte costs at most the line it lands on (or the header): {stats}"
    );
    assert!(stats.distinct + stats.skipped_lines >= total);

    // The merged store still serves a sweep; whatever the corruption ate
    // re-executes, and the results equal fresh execution.
    let runner = SweepRunner::serial();
    let mut merged = SweepCache::open(&dest);
    let results = runner.run_with_cache(specs, &mut merged);
    assert_eq!(results, runner.run_fresh(specs));
    assert_eq!(merged.stats.hits + merged.stats.misses, total);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn divergent_rows_under_one_key_abort_the_merge_untouched() {
    let base = scratch("conflict");
    let spec = &lattice_specs(Scale::Quick)[0];
    let key = CellKey::derive(1, 2, 3, 4, 5);

    // Two stores claiming the same key for *different* rows — the
    // determinism violation merge_stores exists to refuse.
    let row_a = spec.run_cell(0, 0);
    let row_b = spec.run_cell(0, 1);
    let dir_a = base.join("a");
    let dir_b = base.join("b");
    let mut store_a = SweepCache::open(&dir_a);
    store_a.record(key, "s", &row_a);
    store_a.flush().expect("flush");
    let mut store_b = SweepCache::open(&dir_b);
    store_b.record(key, "s", &row_b);
    store_b.flush().expect("flush");

    let dest = base.join("merged");
    let err = merge_stores(&dest, &[dir_a.clone(), dir_b.clone()])
        .expect_err("divergent rows must refuse to merge");
    match err {
        MergeError::Conflict(conflict) => {
            assert_eq!(conflict.key, key.to_hex());
            assert_eq!(conflict.source, dir_b, "the diverging store is named");
        }
        MergeError::Io(err) => panic!("expected a conflict, got io error: {err}"),
    }
    assert!(
        !dest.join("cells.jsonl").exists(),
        "a refused merge must leave the destination untouched"
    );

    // Identical rows under the same key are not a conflict — that is the
    // idempotence case.
    let dir_c = base.join("c");
    let mut store_c = SweepCache::open(&dir_c);
    store_c.record(key, "s", &row_a);
    store_c.flush().expect("flush");
    let stats = merge_stores(&dest, &[dir_a, dir_c]).expect("identical rows collapse");
    assert_eq!(stats.duplicates, 1);
    assert_eq!(stats.distinct, 1);
    let _ = std::fs::remove_dir_all(&base);
}

/// The farm's final pass at the library level: a full sweep over the
/// merged store executes zero cells and assembles a frame byte-identical
/// to fresh (serial, unsharded) execution.
#[test]
fn sweep_over_a_merged_store_is_all_hits_and_matches_fresh() {
    let base = scratch("warm-farm");
    let specs = &lattice_specs(Scale::Quick)[..3];
    let total: u64 = specs.iter().map(|s| s.seeds).sum();
    let (dirs, _, _) = run_sharded(&base, 4, 2, specs);
    let dest = base.join("merged");
    merge_stores(&dest, &dirs).expect("clean merge");

    let runner = SweepRunner::serial();
    let mut merged = SweepCache::open(&dest);
    let results = runner.run_with_cache(specs, &mut merged);
    assert_eq!(merged.stats.hits, total, "every cell must be a hit");
    assert_eq!(merged.stats.misses, 0);
    let fresh = runner.run_fresh(specs);
    assert_eq!(results, fresh);
    assert_eq!(results.render(), fresh.render());
    let _ = std::fs::remove_dir_all(&base);
}

/// The crash-recovery contract the supervised farm is built on: a shard
/// killed mid-execution keeps every cell it had flushed (the store is
/// append-synced per cell), its retry is a *warm* run that executes only
/// the remainder, and the recovered merge is byte-identical to the
/// serial unsharded store. The "kill" here is a panic raised from the
/// per-cell observer — the same interruption point a SIGKILL between
/// flushes exercises, minus the subprocess.
#[test]
fn killed_shard_partial_work_survives_and_retry_is_warm() {
    let base = scratch("killed-shard");
    let specs = &lattice_specs(Scale::Quick)[..3];
    let shard = ShardSpec::new(0, 2).expect("valid");
    let runner = SweepRunner::with_threads(2);

    // First attempt: die after the third persisted cell.
    let dir = base.join("shard-0");
    let mut store = SweepCache::open(&dir);
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        runner.run_shard_observed(specs, shard, &mut store, &|done, _owned| {
            if done == 3 {
                panic!("injected kill");
            }
        })
    }));
    assert!(attempt.is_err(), "the injected kill must surface");
    drop(store);

    // The killed attempt's flushed cells survived on disk.
    let mut reopened = SweepCache::open(&dir);
    let persisted = reopened.stats.loaded;
    assert!(persisted >= 3, "at least the observed cells were flushed");
    assert_eq!(
        reopened.stats.skipped_lines, 0,
        "no torn lines: each flush is synced whole"
    );

    // The retry is warm: it re-executes only what the kill lost.
    let retry = runner.run_shard(specs, shard, &mut reopened);
    reopened.flush().expect("flush");
    assert!(
        persisted < retry.owned_cells,
        "the kill must have lost some work"
    );
    assert_eq!(
        retry.hits, persisted,
        "every persisted cell is served, not re-run"
    );
    assert_eq!(retry.executed, retry.owned_cells - persisted);

    // Completing the other shard and merging recovers the exact serial
    // unsharded bytes — the crash left no trace in the result.
    let other = base.join("shard-1");
    let mut other_store = SweepCache::open(&other);
    runner.run_shard(
        specs,
        ShardSpec::new(1, 2).expect("valid"),
        &mut other_store,
    );
    other_store.flush().expect("flush");
    let dest = base.join("merged");
    merge_stores(&dest, &[dir, other]).expect("clean merge after recovery");
    assert_eq!(
        std::fs::read(dest.join("cells.jsonl")).expect("read merged store"),
        unsharded_store_bytes(&base, specs),
        "recovered merge must be byte-identical to the serial unsharded store"
    );
    let _ = std::fs::remove_dir_all(&base);
}

/// Re-running a shard against its own store is incremental, exactly like
/// an unsharded cached sweep: second run, zero executions.
#[test]
fn warm_shard_runs_execute_zero_cells() {
    let base = scratch("warm-shard");
    let specs = &lattice_specs(Scale::Quick)[..2];
    let shard = ShardSpec::new(0, 2).expect("valid");
    let runner = SweepRunner::with_threads(2);

    let dir = base.join("shard-0");
    let mut store = SweepCache::open(&dir);
    let cold = runner.run_shard(specs, shard, &mut store);
    store.flush().expect("flush");
    assert_eq!(cold.executed, cold.owned_cells);

    let mut reopened = SweepCache::open(&dir);
    let warm = runner.run_shard(specs, shard, &mut reopened);
    assert_eq!(warm.owned_cells, cold.owned_cells);
    assert_eq!(warm.hits, cold.owned_cells, "everything owned is stored");
    assert_eq!(warm.executed, 0, "a warm shard executes nothing");
    let _ = std::fs::remove_dir_all(&base);
}
