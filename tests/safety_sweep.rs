//! Property-based safety sweeps: the paper's safety/liveness separation
//! says agreement and validity must hold **unconditionally** — under any
//! message loss, any crash pattern, any detector noise admissible for the
//! algorithm's class, and any contention advice whatsoever. Liveness may
//! die; safety may not.

use ccwan::cd::{CdClass, CheckedDetector, ClassDetector, FreedomPolicy};
use ccwan::cm::{FairWakeUp, NoCm, PreStabilization};
use ccwan::consensus::{
    alg1, alg2, alg3, alg4, ConsensusAutomaton, ConsensusRun, IdSpace, Uid, Value, ValueDomain,
};
use ccwan::sim::crash::RandomCrashes;
use ccwan::sim::loss::{Ecf, RandomLoss};
use ccwan::sim::{Components, Round};
use proptest::prelude::*;

/// Shared adversarial environment generator: arbitrary loss rate, noisy
/// advice within the class, random crash pressure, chaotic contention.
fn hostile(class: CdClass, seed: u64, loss: f64, r_acc: u64, crashes: usize) -> Components {
    Components {
        detector: Box::new(
            CheckedDetector::new(
                ClassDetector::new(class, FreedomPolicy::Random { p: 0.4 }, seed)
                    .accurate_from(Round(r_acc)),
                class,
            )
            .strict(),
        ),
        manager: Box::new(FairWakeUp::new(
            Round(r_acc),
            PreStabilization::Random { p: 0.6 },
            seed ^ 3,
        )),
        loss: Box::new(Ecf::new(RandomLoss::new(loss, seed ^ 5), Round(r_acc))),
        crash: Box::new(RandomCrashes::new(0.02, crashes, seed ^ 7)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 1 never violates safety inside maj-⋄AC, whatever happens.
    #[test]
    fn alg1_safety(
        seed in 0u64..10_000,
        loss in 0.0f64..1.0,
        r_acc in 1u64..40,
        n in 2usize..7,
        v_size in 2u64..40,
        crashes in 0usize..3,
    ) {
        let domain = ValueDomain::new(v_size);
        let values: Vec<Value> = (0..n).map(|i| Value((seed + i as u64) % v_size)).collect();
        let mut run = ConsensusRun::new(
            alg1::processes(domain, &values),
            hostile(CdClass::MAJ_EV_AC, seed, loss, r_acc, crashes),
        );
        let outcome = run.run_rounds(120);
        prop_assert!(outcome.is_safe(), "{:?}", outcome.safety_violations());
    }

    /// Algorithm 2 never violates safety inside 0-⋄AC.
    #[test]
    fn alg2_safety(
        seed in 0u64..10_000,
        loss in 0.0f64..1.0,
        r_acc in 1u64..40,
        n in 2usize..7,
        v_size in 2u64..100,
        crashes in 0usize..3,
    ) {
        let domain = ValueDomain::new(v_size);
        let values: Vec<Value> = (0..n).map(|i| Value((seed * 3 + i as u64) % v_size)).collect();
        let mut run = ConsensusRun::new(
            alg2::processes(domain, &values),
            hostile(CdClass::ZERO_EV_AC, seed, loss, r_acc, crashes),
        );
        let outcome = run.run_rounds(150);
        prop_assert!(outcome.is_safe(), "{:?}", outcome.safety_violations());
    }

    /// The corrected Section 7.3 protocol never violates safety inside
    /// 0-⋄AC — including under leader crashes at arbitrary rounds.
    #[test]
    fn alg3_safety(
        seed in 0u64..10_000,
        loss in 0.0f64..1.0,
        r_acc in 1u64..40,
        n in 2usize..6,
        crashes in 0usize..3,
    ) {
        let ids = IdSpace::new(16);
        let domain = ValueDomain::new(1 << 12);
        let assignments: Vec<(Uid, Value)> = (0..n as u64)
            .map(|j| (Uid((seed + 3 * j) % 16), Value((seed * 31 + j) % (1 << 12))))
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        let assignments: Vec<(Uid, Value)> = assignments
            .into_iter()
            .map(|(mut u, v)| {
                while !seen.insert(u) { u = Uid((u.0 + 1) % 16); }
                (u, v)
            })
            .collect();
        let mut run = ConsensusRun::new(
            alg3::processes(ids, domain, &assignments, seed),
            hostile(CdClass::ZERO_EV_AC, seed, loss, r_acc, crashes),
        );
        let outcome = run.run_rounds(250);
        prop_assert!(outcome.is_safe(), "{:?}", outcome.safety_violations());
    }

    /// The BST algorithm never violates safety inside 0-AC under arbitrary
    /// loss and crashes (no ECF, no contention manager).
    #[test]
    fn alg4_safety(
        seed in 0u64..10_000,
        loss in 0.0f64..1.0,
        n in 2usize..7,
        v_size in 2u64..100,
        crashes in 0usize..4,
    ) {
        let domain = ValueDomain::new(v_size);
        let values: Vec<Value> = (0..n).map(|i| Value((seed * 7 + i as u64) % v_size)).collect();
        let mut run = ConsensusRun::new(
            alg4::processes(domain, &values),
            Components {
                detector: Box::new(
                    CheckedDetector::new(
                        ClassDetector::new(CdClass::ZERO_AC, FreedomPolicy::Quiet, seed),
                        CdClass::ZERO_AC,
                    )
                    .strict(),
                ),
                manager: Box::new(NoCm),
                loss: Box::new(RandomLoss::new(loss, seed ^ 9)),
                crash: Box::new(RandomCrashes::new(0.02, crashes, seed ^ 11)),
            },
        );
        let outcome = run.run_rounds(200);
        prop_assert!(outcome.is_safe(), "{:?}", outcome.safety_violations());
    }

    /// Decisions, when they happen, are monotone facts: once decided, a
    /// process never changes or retracts its decision.
    #[test]
    fn decisions_are_stable(
        seed in 0u64..5_000,
        loss in 0.0f64..0.9,
        n in 2usize..5,
    ) {
        let domain = ValueDomain::new(16);
        let values: Vec<Value> = (0..n).map(|i| Value((seed + i as u64) % 16)).collect();
        let mut run = ConsensusRun::new(
            alg2::processes(domain, &values),
            hostile(CdClass::ZERO_EV_AC, seed, loss, 10, 1),
        );
        let mut seen: Vec<Option<Value>> = vec![None; n];
        for _ in 0..80 {
            run.step();
            for (i, p) in run.sim().processes().iter().enumerate() {
                if let Some(prev) = seen[i] {
                    prop_assert_eq!(p.decision(), Some(prev), "decision changed");
                } else {
                    seen[i] = p.decision();
                }
            }
        }
    }
}
