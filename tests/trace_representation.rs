//! The columnar-arena representation contract of `ExecutionTrace`.
//!
//! Three layers of pinning:
//!
//! 1. A property test: arbitrary round records pushed into the arena-backed
//!    [`ExecutionTrace`] and into the retained-record
//!    [`reference::ReferenceTrace`] oracle produce byte-identical debug
//!    renderings and equal fingerprints.
//! 2. Live traced cells of **all six scenario families** fingerprint
//!    identically under both representations
//!    (`ScenarioSpec::trace_reference_fingerprints`).
//! 3. Hard-coded canary fingerprints captured from the *pre-refactor*
//!    (retained-record) implementation: if these drift, cached sweep
//!    results would be invalidated and the replay-determinism contract
//!    broken — regenerating them is a semantic change, not a refresh.

use ccwan::bench::sweep::Registry;
use ccwan::bench::Scale;
use ccwan::sim::trace::reference::ReferenceTrace;
use ccwan::sim::{
    CdAdvice, CmAdvice, ExecutionTrace, Multiset, ProcessId, Round, RoundRecord, StableHasher,
};
use proptest::prelude::*;

/// One spec per scenario family, with its canary fingerprint and the FNV
/// hash of its cell-0 traced debug rendering, both captured from the
/// retained-record implementation before the columnar refactor landed.
const FAMILY_PINS: [(&str, u64, u64); 6] = [
    ("lattice/maj-AC", 0x932cbcf912a31b7a, 0xb729569ed1dcb5c0),
    ("alg1/n4-v16", 0xc79a5c6ccd325a1b, 0x9cf4b8552e64273e),
    ("alg2/v16", 0xe207f00c6e4820bb, 0xd599ecc9824c5b96),
    ("alg3/v8-i8", 0xe663278ca798d71a, 0x74cb3a09fd303b25),
    ("bst/v16-leafcrash", 0x70d77714649512f5, 0x0e35b191e8d20271),
    ("ablation/alg2-zero", 0x71dfd0af7b6b7e41, 0x42980c26785f1ab9),
];

#[test]
fn all_six_families_fingerprint_like_the_reference_builder() {
    let registry = Registry::standard(Scale::Quick);
    for (name, _, _) in FAMILY_PINS {
        let spec = registry.get(name).expect("pinned spec in registry");
        for case in 0..2 {
            let (arena, reference) = spec.trace_reference_fingerprints(case);
            assert_eq!(
                arena, reference,
                "{name} case {case}: arena and retained-record fingerprints diverged"
            );
        }
    }
}

#[test]
fn family_fingerprints_match_pre_refactor_values() {
    let registry = Registry::standard(Scale::Quick);
    for (name, canary, trace_hash) in FAMILY_PINS {
        let spec = registry.get(name).expect("pinned spec in registry");
        assert_eq!(
            spec.canary_fingerprint(),
            canary,
            "{name}: canary fingerprint drifted from the pre-refactor pin \
             (this invalidates every cached sweep result of the spec)"
        );
        assert_eq!(
            StableHasher::hash_str(&spec.trace_fingerprint(0)),
            trace_hash,
            "{name}: traced debug rendering drifted from the pre-refactor pin"
        );
    }
}

/// SplitMix64 — the record generator's deterministic stream (the proptest
/// shim samples only flat primitives, so records derive from a seed).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudorandom round record over `n` processes with small-u8 messages.
fn gen_record(n: usize, round: u64, full: bool, state: &mut u64) -> RoundRecord<u8> {
    let sent: Vec<Option<u8>> = (0..n)
        .map(|_| (!mix(state).is_multiple_of(3)).then(|| (mix(state) % 6) as u8))
        .collect();
    let cm: Vec<CmAdvice> = (0..n)
        .map(|_| {
            if mix(state).is_multiple_of(2) {
                CmAdvice::Active
            } else {
                CmAdvice::Passive
            }
        })
        .collect();
    let cd: Vec<CdAdvice> = (0..n)
        .map(|_| {
            if mix(state).is_multiple_of(3) {
                CdAdvice::Collision
            } else {
                CdAdvice::Null
            }
        })
        .collect();
    let alive: Vec<bool> = (0..n).map(|_| !mix(state).is_multiple_of(4)).collect();
    let mut crashed: Vec<ProcessId> = (0..mix(state) % 3)
        .filter(|_| n > 0)
        .map(|_| ProcessId((mix(state) % n as u64) as usize))
        .collect();
    crashed.sort_unstable();
    crashed.dedup();
    let recv: Vec<Multiset<u8>> = (0..n)
        .map(|_| {
            (0..mix(state) % 5)
                .map(|_| (mix(state) % 6) as u8)
                .collect()
        })
        .collect();
    let received_counts = recv.iter().map(|m| m.total()).collect();
    RoundRecord {
        round: Round(round),
        cm,
        sent,
        cd,
        received_counts,
        received: full.then_some(recv),
        crashed,
        alive,
    }
}

/// A pseudorandom same-detail record sequence over a shared `n`.
fn gen_rounds(seed: u64) -> (usize, Vec<RoundRecord<u8>>) {
    let mut state = seed;
    let n = (mix(&mut state) % 5) as usize;
    let full = mix(&mut state).is_multiple_of(2);
    let len = 1 + (mix(&mut state) % 5) as usize;
    let records = (0..len)
        .map(|r| gen_record(n, r as u64 + 1, full, &mut state))
        .collect();
    (n, records)
}

proptest! {
    /// The arena and the retained-record oracle agree on every derived
    /// artifact: fingerprint, whole-trace debug rendering, and per-round
    /// views vs. records.
    #[test]
    fn arena_matches_reference_builder(seed in 0u64..u64::MAX) {
        let (n, records) = gen_rounds(seed);
        let mut arena: ExecutionTrace<u8> = ExecutionTrace::new(n);
        let mut reference: ReferenceTrace<u8> = ReferenceTrace::new(n);
        for rec in &records {
            arena.push_record(rec.clone());
            reference.push(rec.clone());
        }
        prop_assert_eq!(arena.len(), records.len());
        prop_assert_eq!(arena.fingerprint(), reference.fingerprint());
        prop_assert_eq!(format!("{arena:?}"), format!("{reference:?}"));
        for (view, rec) in arena.rounds().zip(reference.rounds().iter()) {
            prop_assert_eq!(format!("{view:?}"), format!("{rec:?}"));
            prop_assert_eq!(view.senders(), rec.senders());
            prop_assert_eq!(view.broadcast_count(), rec.broadcast_count());
            prop_assert_eq!(view.transmission_entry(), rec.transmission_entry());
        }
    }

    /// Round-tripping the arena through `to_record` and back preserves the
    /// fingerprint (views are lossless).
    #[test]
    fn views_round_trip_losslessly(seed in 0u64..u64::MAX) {
        let (n, records) = gen_rounds(seed);
        let mut arena: ExecutionTrace<u8> = ExecutionTrace::new(n);
        for rec in records {
            arena.push_record(rec);
        }
        let rebuilt = ReferenceTrace::from_trace(&arena);
        prop_assert_eq!(arena.fingerprint(), rebuilt.fingerprint());
    }
}
