//! The wake-up-service subtlety documented in DESIGN.md ("Known
//! subtleties" #1), reproduced and then resolved:
//!
//! The formal wake-up service of Property 2 is *oblivious* — nothing stops
//! it from stabilizing onto a process that has already decided-and-halted.
//! Algorithms 1 and 2 halt on decision, so such a stabilization starves
//! every undecided process: the sole "active" process never broadcasts
//! again and nobody else is allowed to. The paper's termination proofs
//! (Lemmas 8 and 13) implicitly assume the stabilized-upon process
//! broadcasts; a fair wake-up service (stabilize on a *contending*
//! process — what any real backoff MAC does) restores the theorem.

use ccwan::cd::{CdClass, CheckedDetector, ClassDetector, FreedomPolicy, ScriptedDetector};
use ccwan::cm::{FairWakeUp, PreStabilization, WakeUpService};
use ccwan::consensus::{alg1, ConsensusAutomaton, ConsensusRun, Value, ValueDomain};
use ccwan::sim::crash::NoCrashes;
use ccwan::sim::loss::{Ecf, RandomLoss, ScriptedLoss};
use ccwan::sim::{CdAdvice, Components, ProcessId, Round};

/// An environment where process 0 decides early (a clean first exchange
/// reaches only rounds it participates in), after which the *oblivious*
/// wake-up service stabilizes on process 0 — which has halted.
fn stalled_run() -> ConsensusRun<alg1::MajEcfConsensus> {
    let domain = ValueDomain::new(4);
    let procs = alg1::processes(domain, &[Value(1), Value(2), Value(2)]);
    // Round 1 (proposal): only p0 active; message delivered to everyone.
    // Round 2 (veto): silence everywhere — but scripted false positives at
    // p1 and p2 keep them from deciding, while p0 decides and halts.
    // From round 3 on, the oblivious service keeps designating p0.
    let cd_script = vec![
        vec![CdAdvice::Null; 3],
        vec![CdAdvice::Null, CdAdvice::Collision, CdAdvice::Collision],
    ];
    let components = Components {
        detector: Box::new(
            CheckedDetector::new(
                ScriptedDetector::new(
                    cd_script,
                    Box::new(
                        ClassDetector::new(CdClass::MAJ_EV_AC, FreedomPolicy::Quiet, 0)
                            .accurate_from(Round(3)),
                    ),
                )
                .declaring_accuracy_from(Some(Round(3))),
                CdClass::MAJ_EV_AC,
            )
            .strict(),
        ),
        manager: Box::new(WakeUpService::new(
            Round(1),
            ProcessId(0),
            PreStabilization::AllPassive,
            0,
        )),
        loss: Box::new(Ecf::new(RandomLoss::new(0.0, 0), Round(1))),
        crash: Box::new(NoCrashes),
    };
    ConsensusRun::new(procs, components)
}

#[test]
fn oblivious_wakeup_on_a_halted_process_stalls_algorithm_1() {
    let mut run = stalled_run();
    let outcome = run.run_to_completion(Round(500));
    // p0 decided and halted...
    assert_eq!(run.sim().processes()[0].decision(), Some(Value(1)));
    assert!(run.sim().processes()[0].halted());
    // ...and the others are starved forever: liveness lost, safety intact.
    assert!(!outcome.terminated, "expected the documented stall");
    assert!(outcome.is_safe());
    assert_eq!(outcome.decisions[1], None);
    assert_eq!(outcome.decisions[2], None);
}

#[test]
fn fair_wakeup_restores_the_theorem() {
    // Same scripted prefix, but the service stabilizes on the lowest
    // *contending* process: once p0 halts, p1 gets the channel.
    let domain = ValueDomain::new(4);
    let procs = alg1::processes(domain, &[Value(1), Value(2), Value(2)]);
    let cd_script = vec![
        vec![CdAdvice::Null; 3],
        vec![CdAdvice::Null, CdAdvice::Collision, CdAdvice::Collision],
    ];
    let components = Components {
        detector: Box::new(
            ScriptedDetector::new(
                cd_script,
                Box::new(
                    ClassDetector::new(CdClass::MAJ_EV_AC, FreedomPolicy::Quiet, 0)
                        .accurate_from(Round(3)),
                ),
            )
            .declaring_accuracy_from(Some(Round(3))),
        ),
        manager: Box::new(FairWakeUp::new(Round(1), PreStabilization::AllPassive, 0)),
        loss: Box::new(Ecf::new(RandomLoss::new(0.0, 0), Round(1))),
        crash: Box::new(NoCrashes),
    };
    let mut run = ConsensusRun::new(procs, components);
    let outcome = run.run_to_completion(Round(50));
    assert!(outcome.terminated, "fair wake-up must unblock the laggards");
    assert!(outcome.is_safe());
    assert_eq!(outcome.agreed_value(), Some(Value(1)));
}

/// The flip side, pinning down *why* the stall needs false positives:
/// message loss alone cannot produce it. If the laggards merely *lose* the
/// exchange, majority completeness forces `±` at them, they veto, the
/// decider hears the veto (or its own mandatory `±`), and nobody halts
/// early — the run converges once loss stops. The asymmetric-halt window
/// is exactly the eventual-accuracy slack, which is why the paper's
/// accurate-from-round-1 classes never exhibit it.
#[test]
fn loss_alone_cannot_create_the_asymmetric_halt() {
    fn proposal_only_self(s: ProcessId, r: ProcessId) -> bool {
        s == r
    }
    fn all(_s: ProcessId, _r: ProcessId) -> bool {
        true
    }
    let domain = ValueDomain::new(4);
    let loss = ScriptedLoss::new(vec![proposal_only_self, all]);
    let components = Components {
        detector: Box::new(ClassDetector::new(
            CdClass::MAJ_AC, // accurate from round 1: no false positives
            FreedomPolicy::Quiet,
            0,
        )),
        manager: Box::new(WakeUpService::new(
            Round(1),
            ProcessId(0),
            PreStabilization::AllPassive,
            0,
        )),
        loss: Box::new(loss),
        crash: Box::new(NoCrashes),
    };
    let mut run = ConsensusRun::new(
        alg1::processes(domain, &[Value(1), Value(2), Value(2)]),
        components,
    );
    let outcome = run.run_to_completion(Round(300));
    // Everyone converges (the designated process keeps broadcasting until
    // all decide together): no stall without false positives.
    assert!(outcome.terminated);
    assert!(outcome.is_safe());
    assert_eq!(outcome.agreed_value(), Some(Value(1)));
}
