//! The Section 7 termination bounds, verified against adversarial (but
//! class-admissible) environments:
//!
//! * Theorem 1 — Algorithm 1 by `CST + 2`;
//! * Theorem 2 — Algorithm 2 by `CST + 2(⌈lg|V|⌉ + 1)`;
//! * Section 7.3 — the non-anonymous protocol in `CST + Θ(min{lg|V|, lg|I|})`;
//! * Theorem 3 — the BST algorithm within `8·lg|V|` rounds of failures
//!   ceasing, including the worst-case walk-then-crash schedule.

use ccwan::cd::{CdClass, CheckedDetector, ClassDetector, FreedomPolicy};
use ccwan::cm::{FairWakeUp, NoCm, PreStabilization};
use ccwan::consensus::{alg1, alg2, alg3, alg4, ConsensusRun, IdSpace, Uid, Value, ValueDomain};
use ccwan::sim::crash::{NoCrashes, ScheduledCrashes};
use ccwan::sim::loss::{Ecf, RandomLoss};
use ccwan::sim::{Components, ProcessId, Round};

/// A hostile-prefix environment: heavy loss, detector noise and chaotic
/// contention advice until `cst`, then stabilization — all certified
/// against `class`.
fn chaos_until(cst: u64, class: CdClass, seed: u64) -> Components {
    Components {
        detector: Box::new(
            CheckedDetector::new(
                ClassDetector::new(class, FreedomPolicy::Random { p: 0.35 }, seed)
                    .accurate_from(Round(cst)),
                class,
            )
            .strict(),
        ),
        manager: Box::new(FairWakeUp::new(
            Round(cst),
            PreStabilization::Random { p: 0.5 },
            seed ^ 1,
        )),
        loss: Box::new(Ecf::new(RandomLoss::new(0.65, seed ^ 2), Round(cst))),
        crash: Box::new(NoCrashes),
    }
}

#[test]
fn theorem_1_alg1_terminates_by_cst_plus_2() {
    let domain = ValueDomain::new(32);
    for seed in 0..30u64 {
        let cst = 5 + seed % 10;
        let values: Vec<Value> = (0..5).map(|i| Value((seed + i) % 32)).collect();
        let mut run = ConsensusRun::new(
            alg1::processes(domain, &values),
            chaos_until(cst, CdClass::MAJ_EV_AC, seed),
        );
        let outcome = run.run_to_completion(Round(cst + 50));
        assert!(outcome.terminated, "seed {seed}: no termination");
        assert!(outcome.is_safe(), "seed {seed}: unsafe");
        let past = outcome.last_decision().unwrap().since(Round(cst));
        assert!(past <= 2, "seed {seed}: decided {past} rounds past CST");
    }
}

#[test]
fn theorem_2_alg2_terminates_by_cst_plus_2_log_v_plus_2() {
    for (v_size, seed) in [(4u64, 0u64), (64, 1), (1024, 2), (4096, 3)] {
        let domain = ValueDomain::new(v_size);
        let bound = 2 * (u64::from(domain.bits()) + 1);
        for s in 0..8u64 {
            let seed = seed * 100 + s;
            let cst = 7;
            let values: Vec<Value> = (0..4).map(|i| Value((seed * 3 + i) % v_size)).collect();
            let mut run = ConsensusRun::new(
                alg2::processes(domain, &values),
                chaos_until(cst, CdClass::ZERO_EV_AC, seed),
            );
            let outcome = run.run_to_completion(Round(cst + 10 * bound));
            assert!(outcome.terminated && outcome.is_safe(), "seed {seed}");
            let past = outcome.last_decision().unwrap().since(Round(cst));
            assert!(
                past <= bound,
                "|V|={v_size} seed {seed}: {past} > bound {bound}"
            );
        }
    }
}

#[test]
fn section_7_3_scales_with_min_of_log_v_log_i() {
    // With a huge value space but a tiny ID space, the non-anonymous
    // protocol must finish in rounds proportional to lg|I|, not lg|V|.
    let ids = IdSpace::new(8); // lg|I| = 3
    let domain = ValueDomain::new(1 << 24); // lg|V| = 24
                                            // Generous constant for the 4-slot interleave and one full election
                                            // cycle plus dissemination: c · (lg|I| + 2) with c = 16.
    let budget = 16 * (u64::from(ids.bits()) + 2);
    for seed in 0..10u64 {
        let cst = 5;
        let assignments: Vec<(Uid, Value)> = (0..4u64)
            .map(|j| {
                (
                    Uid((seed + 2 * j) % 8),
                    Value((seed * 99_991 + j) % (1 << 24)),
                )
            })
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        let assignments: Vec<(Uid, Value)> = assignments
            .into_iter()
            .map(|(mut u, v)| {
                while !seen.insert(u) {
                    u = Uid((u.0 + 1) % 8);
                }
                (u, v)
            })
            .collect();
        let mut run = ConsensusRun::new(
            alg3::processes(ids, domain, &assignments, seed),
            chaos_until(cst, CdClass::ZERO_EV_AC, seed),
        );
        let outcome = run.run_to_completion(Round(cst + 20 * budget));
        assert!(outcome.terminated && outcome.is_safe(), "seed {seed}");
        let past = outcome.last_decision().unwrap().since(Round(cst));
        assert!(
            past <= budget,
            "seed {seed}: {past} rounds past CST exceeds lg|I|-scale budget {budget} \
             (protocol is using the value space, not the ID space)"
        );
    }
}

#[test]
fn theorem_3_bst_decides_within_8_log_v_without_failures() {
    for v_bits in [3u32, 5, 8] {
        let v_size = 1u64 << v_bits;
        let domain = ValueDomain::new(v_size);
        let bound = 8 * u64::from(domain.bits()) + 4; // +4: group alignment
        for seed in 0..8u64 {
            let values: Vec<Value> = (0..4).map(|i| Value((seed * 7 + i) % v_size)).collect();
            let mut run = ConsensusRun::new(
                alg4::processes(domain, &values),
                Components {
                    detector: Box::new(
                        CheckedDetector::new(
                            ClassDetector::new(CdClass::ZERO_AC, FreedomPolicy::Quiet, seed),
                            CdClass::ZERO_AC,
                        )
                        .strict(),
                    ),
                    manager: Box::new(NoCm),
                    loss: Box::new(RandomLoss::new(1.0, seed)),
                    crash: Box::new(NoCrashes),
                },
            );
            let outcome = run.run_to_completion(Round(10 * bound));
            assert!(outcome.terminated && outcome.is_safe(), "seed {seed}");
            let decided = outcome.last_decision().unwrap().0;
            assert!(
                decided <= bound,
                "|V|={v_size} seed {seed}: decided at {decided} > {bound}"
            );
        }
    }
}

#[test]
fn theorem_3_worst_case_crash_schedule_costs_a_climb() {
    // One process leads the walk to the deepest left leaf, then dies *in
    // the very round it would vote for its value*; the rest must climb back
    // to the root and descend right — still within 8·lg|V| of the crash
    // (the paper's "after failures cease" bound).
    let domain = ValueDomain::new(64);
    // Walk depth of value 0: the number of descents before its vote-val.
    let mut node = ccwan::consensus::bst::BstNode::root(domain);
    let mut steps = 0u64;
    while node.value() != Value(0) {
        node = node.left().expect("value 0 is leftmost");
        steps += 1;
    }
    // Group g spans rounds 4g+1..4g+4; the leaf's vote-val round is
    // 4·steps + 1. Crashing at round start silences the vote.
    let crash_round = 4 * steps + 1;
    let bound = 8 * u64::from(domain.bits()) + 8;
    for seed in 0..6u64 {
        let mut values = vec![Value(63); 4];
        values[0] = Value(0);
        let mut run = ConsensusRun::new(
            alg4::processes(domain, &values),
            Components {
                detector: Box::new(ClassDetector::new(
                    CdClass::ZERO_AC,
                    FreedomPolicy::Quiet,
                    seed,
                )),
                manager: Box::new(NoCm),
                loss: Box::new(RandomLoss::new(1.0, seed)),
                crash: Box::new(ScheduledCrashes::new().crash(ProcessId(0), Round(crash_round))),
            },
        );
        let outcome = run.run_to_completion(Round(crash_round + 10 * bound));
        assert!(outcome.terminated && outcome.is_safe(), "seed {seed}");
        assert_eq!(
            outcome.agreed_value(),
            Some(Value(63)),
            "survivors must decide their own value"
        );
        let after = outcome.last_decision().unwrap().since(Round(crash_round));
        assert!(
            after <= bound,
            "seed {seed}: {after} rounds after failures cease > {bound}"
        );
        // The crash really cost something: the walk had to climb.
        assert!(after > 8, "seed {seed}: suspiciously fast ({after})");
    }
}
