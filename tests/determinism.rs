//! Engine and sweep determinism: the same `(ScenarioSpec, case)` cell must
//! replay byte-identically, and a parallel sweep must equal the serial one
//! cell for cell. These are the contracts the scenario-sweep subsystem is
//! built on — without them, parallel experiment tables would be
//! unreproducible.

use ccwan::bench::sweep::cache::SweepCache;
use ccwan::bench::sweep::spec::{alg2_staircase_specs, bst_nocf_specs, lattice_specs};
use ccwan::bench::Scale;
use ccwan::bench::{Registry, SweepRunner};

/// Same spec + same case ⇒ byte-identical execution trace (full detail,
/// every round record, every receive multiset).
#[test]
fn same_cell_replays_byte_identical_traces() {
    let registry = Registry::standard(Scale::Quick);
    // One representative of each environment/algorithm family.
    let picks: Vec<_> = ["lattice/", "alg2/", "alg3/", "bst/"]
        .iter()
        .map(|prefix| {
            registry
                .specs()
                .iter()
                .find(|s| s.name.starts_with(prefix))
                .unwrap_or_else(|| panic!("registry has a {prefix} spec"))
        })
        .collect();
    for spec in picks {
        for case in 0..2 {
            let first = spec.trace_fingerprint(case);
            let second = spec.trace_fingerprint(case);
            assert!(
                !first.is_empty(),
                "{}: fingerprint must capture the execution",
                spec.name
            );
            assert_eq!(
                first, second,
                "{} case {case}: trace replay diverged",
                spec.name
            );
        }
    }
}

/// The untraced fast path (the outcome-only probe manifest's engine
/// path) produces exactly the measurement the traced reference execution
/// produces — across every algorithm and environment family in the
/// registry. Cells run traced by default now, so the equivalence is
/// pinned by forcing both paths on an outcome-only copy of each spec.
#[test]
fn untraced_cells_match_traced_reference() {
    let registry = Registry::standard(Scale::Quick);
    for prefix in [
        "lattice/",
        "alg1/",
        "alg2/",
        "alg3/",
        "bst/",
        "phy/",
        "ablation/",
    ] {
        let mut spec = registry
            .specs()
            .iter()
            .find(|s| s.name.starts_with(prefix))
            .unwrap_or_else(|| panic!("registry has a {prefix} spec"))
            .clone();
        spec.probes = ccwan::bench::sweep::ProbeManifest::outcome_only();
        for case in 0..2 {
            assert_eq!(
                spec.run_cell(0, case),
                spec.run_cell_traced(0, case),
                "{} case {case}: untraced fast path diverged from traced reference",
                spec.name
            );
        }
    }
}

/// The default (traced, full-manifest) path and the legacy core fields
/// agree: a traced-by-default cell's compatibility accessor equals the
/// outcome-only untraced run of the same cell.
#[test]
fn traced_by_default_cells_preserve_the_legacy_core_fields() {
    let registry = Registry::standard(Scale::Quick);
    for prefix in ["lattice/", "alg2/", "bst/"] {
        let spec = registry
            .specs()
            .iter()
            .find(|s| s.name.starts_with(prefix))
            .unwrap_or_else(|| panic!("registry has a {prefix} spec"));
        let mut outcome_only = spec.clone();
        outcome_only.probes = ccwan::bench::sweep::ProbeManifest::outcome_only();
        for case in 0..2 {
            assert_eq!(
                spec.run_cell(0, case).to_cell_result(),
                outcome_only.run_cell(0, case).to_cell_result(),
                "{} case {case}: probe manifest changed the measured outcome",
                spec.name
            );
        }
    }
}

/// Different cells of one spec see different RNG seeds (no accidental
/// cross-cell coupling).
#[test]
fn cells_are_independently_seeded() {
    let spec = &lattice_specs(Scale::Quick)[0];
    let seeds: Vec<u64> = (0..16).map(|k| spec.cell_seed(k)).collect();
    let mut dedup = seeds.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), seeds.len(), "cell seeds collide");
}

/// Serial vs. 4-way-parallel sweep over the full lattice family: identical
/// result tables, cell for cell.
#[test]
fn serial_and_parallel_lattice_sweeps_are_identical() {
    let specs = lattice_specs(Scale::Quick);
    let serial = SweepRunner::serial().run(&specs);
    let parallel = SweepRunner::with_threads(4).run(&specs);
    assert_eq!(serial, parallel, "parallel sweep diverged from serial");
    assert_eq!(serial.render(), parallel.render());
    // And the derived per-spec statistics agree.
    for (i, spec) in specs.iter().enumerate() {
        assert_eq!(
            serial.worst_rounds_past(i),
            parallel.worst_rounds_past(i),
            "spec {i} ({})",
            spec.name
        );
    }
}

/// Result-cache hits are byte-identical to fresh execution: the cache is
/// a *transport* for the determinism contract, across every environment
/// family and regardless of which run populated the store.
#[test]
fn cached_sweeps_are_byte_identical_to_fresh_ones() {
    let mut specs = alg2_staircase_specs(Scale::Quick);
    specs.truncate(2);
    specs.extend(bst_nocf_specs(Scale::Quick).into_iter().take(2));
    specs.extend(lattice_specs(Scale::Quick).into_iter().take(2));
    let dir = std::env::temp_dir().join(format!("ccwan-determinism-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let fresh = SweepRunner::serial().run_fresh(&specs);
    let mut cache = SweepCache::open(&dir);
    let cold = SweepRunner::with_threads(4).run_with_cache(&specs, &mut cache);
    let warm = SweepRunner::with_threads(2).run_with_cache(&specs, &mut cache);
    assert_eq!(cold, fresh, "cold cached sweep diverged from fresh");
    assert_eq!(warm, fresh, "warm cached sweep diverged from fresh");
    assert_eq!(warm.render(), fresh.render());
    assert_eq!(
        cache.stats.misses,
        specs.iter().map(|s| s.seeds).sum::<u64>(),
        "second pass must be all hits"
    );
}

/// The same holds across environment families (ECF staircase + NOCF with
/// scheduled crashes) and thread counts.
#[test]
fn parallel_sweeps_agree_across_families_and_thread_counts() {
    let mut specs = alg2_staircase_specs(Scale::Quick);
    specs.truncate(3);
    specs.extend(bst_nocf_specs(Scale::Quick).into_iter().take(2));
    let reference = SweepRunner::serial().run(&specs);
    for threads in [2, 4, 8] {
        let parallel = SweepRunner::with_threads(threads).run(&specs);
        assert_eq!(
            reference, parallel,
            "{threads}-thread sweep diverged from serial"
        );
    }
}
