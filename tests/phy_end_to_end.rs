//! The full stack: consensus algorithms running over the slotted SINR
//! radio with carrier-sensing collision detection and the backoff MAC —
//! no formal-model shortcuts anywhere, plus the Section 1 empirical-claim
//! checks at test strength.

use ccwan::cd::{CdClass, CheckedDetector};
use ccwan::cm::BackoffCm;
use ccwan::consensus::{alg2, ConsensusRun, Value, ValueDomain};
use ccwan::phy::{measure_properties, phy_components, simulate_sync, PhyConfig, SyncConfig};
use ccwan::sim::crash::{NoCrashes, ScheduledCrashes};
use ccwan::sim::loss::Ecf;
use ccwan::sim::{Components, ProcessId, Round};

fn full_stack(
    n: usize,
    seed: u64,
    crash: Option<(usize, u64)>,
) -> ConsensusRun<alg2::ZeroEcfConsensus> {
    let domain = ValueDomain::new(16);
    let (loss, detector) = phy_components(PhyConfig::new(n, seed));
    let values: Vec<Value> = (0..n).map(|i| Value((seed + i as u64) % 16)).collect();
    let crash_adv: Box<dyn ccwan::sim::CrashAdversary> = match crash {
        Some((p, r)) => Box::new(ScheduledCrashes::new().crash(ProcessId(p), Round(r))),
        None => Box::new(NoCrashes),
    };
    ConsensusRun::new(
        alg2::processes(domain, &values),
        Components {
            detector: Box::new(CheckedDetector::new(detector, CdClass::ZERO_EV_AC)),
            manager: Box::new(BackoffCm::new(seed ^ 0xFEED)),
            loss: Box::new(Ecf::new(loss, Round(1))),
            crash: crash_adv,
        },
    )
}

#[test]
fn consensus_over_the_radio_terminates_safely() {
    for n in [4usize, 8, 12] {
        for seed in 1..6u64 {
            let mut run = full_stack(n, seed * 31, None);
            let outcome = run.run_to_completion(Round(4000));
            assert!(outcome.is_safe(), "n={n} seed={seed}");
            assert!(
                outcome.terminated,
                "n={n} seed={seed}: no decision in 4000 rounds"
            );
        }
    }
}

#[test]
fn consensus_over_the_radio_survives_a_crash() {
    for seed in 1..5u64 {
        let mut run = full_stack(6, seed * 17, Some((0, 9)));
        let outcome = run.run_to_completion(Round(5000));
        assert!(outcome.is_safe(), "seed={seed}");
        assert!(outcome.terminated, "seed={seed}");
    }
}

#[test]
fn backoff_mac_stabilizes_on_the_radio() {
    let mut run = full_stack(8, 5, None);
    run.run_to_completion(Round(4000));
    assert!(
        run.trace().observed_wakeup_round().is_some(),
        "no single-active suffix observed"
    );
}

#[test]
fn paper_claim_zero_completeness_always_majority_mostly() {
    let stats = measure_properties(PhyConfig::new(8, 3), 1500, 0.4, 99);
    assert!(stats.zero_complete_rounds >= 0.995, "{stats:?}");
    assert!(stats.majority_complete_rounds > 0.9, "{stats:?}");
    assert!(stats.accurate_rounds >= 0.995, "{stats:?}");
}

#[test]
fn paper_claim_20_to_50_percent_loss_under_load() {
    let stats = measure_properties(PhyConfig::new(8, 5), 1500, 0.6, 41);
    assert!(
        (0.2..=0.55).contains(&stats.loss_fraction),
        "loss {:.3} outside the paper's 20-50% band",
        stats.loss_fraction
    );
}

#[test]
fn interference_gives_eventual_accuracy_with_declared_horizon() {
    let cfg = PhyConfig::new(6, 7).with_interference(0.4, Some(Round(200)));
    let (_, detector) = phy_components(cfg);
    use ccwan::sim::CollisionDetector;
    assert_eq!(detector.accuracy_from(), Some(Round(200)));
}

#[test]
fn synchronized_rounds_are_justified() {
    let stats = simulate_sync(SyncConfig::default(), 20_000);
    assert!(
        stats.skew_fraction_of_round < 0.05,
        "clock skew {:.4} of a round — synchronized rounds unsound",
        stats.skew_fraction_of_round
    );
}
