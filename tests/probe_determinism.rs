//! Probe determinism: the contracts the composable observation API adds
//! on top of the sweep substrate's replay guarantees.
//!
//! 1. Serial and work-stealing parallel sweeps produce **byte-identical**
//!    [`ResultsFrame`]s — same render, same fingerprint — for arbitrary
//!    spec subsets and thread counts (proptest).
//! 2. A probe's output is a pure function of `(spec, case)`: re-running a
//!    cell, in any order, through any entry point, yields the identical
//!    metric row. (The cross-*process* half of this contract is pinned by
//!    `crates/bench/tests/check_mode.rs`, which compares `--metrics`
//!    stdout bytes across separate `run_experiments` invocations — cold,
//!    warm, and `--no-cache`.)

use ccwan::bench::sweep::{MetricId, ProbeManifest, Registry};
use ccwan::bench::{Scale, SweepRunner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any subset of the standard registry, swept serially and with 2–8
    /// worker threads, assembles byte-identical frames.
    #[test]
    fn serial_and_parallel_frames_are_byte_identical(
        start in 0usize..40,
        len in 1usize..4,
        threads in 2usize..8,
    ) {
        let registry = Registry::standard(Scale::Quick);
        let all = registry.specs();
        let start = start.min(all.len() - 1);
        let end = (start + len).min(all.len());
        let specs = &all[start..end];

        let serial = SweepRunner::serial().run_fresh(specs);
        let parallel = SweepRunner::with_threads(threads).run_fresh(specs);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial.render(), parallel.render());
        prop_assert_eq!(serial.fingerprint(), parallel.fingerprint());
    }
}

/// Replaying one cell — directly, via the forced-traced entry point, or
/// inside a sweep — always yields the identical metric row.
#[test]
fn probe_output_is_a_pure_function_of_spec_and_case() {
    let registry = Registry::standard(Scale::Quick);
    for prefix in ["lattice/", "alg2/", "bst/", "phy/"] {
        let spec = registry
            .specs()
            .iter()
            .find(|s| s.name.starts_with(prefix))
            .unwrap_or_else(|| panic!("registry has a {prefix} spec"));
        for case in 0..2 {
            let direct = spec.run_cell(7, case);
            let again = spec.run_cell(7, case);
            assert_eq!(direct, again, "{} case {case} replay", spec.name);
            let forced = spec.run_cell_traced(7, case);
            assert_eq!(direct, forced, "{} case {case} forced-traced", spec.name);
        }
        // The same cell inside a sweep carries the same metrics.
        let frame = SweepRunner::with_threads(3).run_fresh(std::slice::from_ref(spec));
        let from_sweep = frame.spec(0).row(1);
        assert_eq!(
            from_sweep,
            spec.run_cell(0, 1).metrics,
            "{}: sweep-assembled row diverged from direct execution",
            spec.name
        );
    }
}

/// The frame fingerprint moves when any probe metric moves: two specs
/// differing only in probe manifest produce frames with different
/// fingerprints (columns differ), while their core cells agree.
#[test]
fn frame_fingerprint_covers_probe_columns() {
    let spec = Registry::standard(Scale::Quick)
        .specs()
        .iter()
        .find(|s| s.name.starts_with("lattice/"))
        .expect("lattice spec")
        .clone();
    let mut outcome_only = spec.clone();
    outcome_only.probes = ProbeManifest::outcome_only();

    let rich = SweepRunner::serial().run_fresh(std::slice::from_ref(&spec));
    let lean = SweepRunner::serial().run_fresh(std::slice::from_ref(&outcome_only));
    assert_ne!(
        rich.fingerprint(),
        lean.fingerprint(),
        "dropping probe columns must change the frame fingerprint"
    );
    assert_eq!(
        rich.cell_results(),
        lean.cell_results(),
        "the core measurements must not depend on the probe selection"
    );
    assert!(rich.spec(0).column(MetricId::BroadcastsTotal).is_some());
    assert!(lean.spec(0).column(MetricId::BroadcastsTotal).is_none());
}
